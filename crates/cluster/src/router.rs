//! The cluster router: **parallel** scatter-gather over shard nodes.
//!
//! A [`Router`] owns one long-lived worker thread per shard. Each
//! worker holds that shard's persistent connection (lazily opened,
//! hello handshake verified against the [`ShardMap`]) and executes the
//! operations the router feeds it over a channel — so a query's
//! per-shard round trips run **concurrently**, and per-shard scan work
//! (which shrinks as `1/N`) actually buys wall-clock throughput
//! instead of being serialized behind one mutable connection.
//!
//! The router serves the same analyst surface a single node does —
//! **any compiled [`TermPlan`]**, which covers every query family
//! (conjunctions, DNF, intervals, means, moments, trees, histograms,
//! linear combinations) — plus ingest and status, by **merging exact
//! partial counts** instead of estimates:
//!
//! 1. every shard answers one generic `PartialTermCounts` frame with
//!    integer `(ones, population)` counts for the plan's deduplicated
//!    terms (a shard holding none of a subset's records reports
//!    `(0, 0)`);
//! 2. the router sums them ([`PlanAccumulator`]) — integer addition,
//!    exact in any order, and merged **in ascending shard order**
//!    regardless of which worker finished first;
//! 3. the Algorithm 2 float inversion runs **once per term**, on the
//!    merged sums, via the same [`psketch_core::Estimate::from_counts`]
//!    a single node uses, and [`TermPlan::evaluate`] replays the
//!    compiler's combination order.
//!
//! Cluster answers are therefore bit-identical to a single node holding
//! the union of the records — and bit-identical at every
//! [`RouterConfig::fanout`], because parallelism only changes *when*
//! a shard's counts arrive, never the order they are merged in (the
//! property tests in this crate pin both down, family by family).
//!
//! # Failure handling
//!
//! Transport failures are retried per shard with **capped** exponential
//! backoff ([`backoff_delay`]); retries on different shards run in
//! parallel, so one slow shard no longer stalls the others' attempts.
//! A shard that stays unreachable is reported as **missing** in the
//! answer's [`Coverage`] rather than silently skewing `r'`: the
//! estimate then covers exactly the responding shards' population, and
//! the caller can see which shards — and, when a prior
//! [`Router::status`] sweep recorded their size, what fraction of the
//! known user population — the answer excludes.
//!
//! Deterministic server refusals (budget exhausted, malformed query)
//! are never retried and fail the whole query. When several shards
//! fail fatally in the same round — two refuse concurrently, or one
//! refuses while another turns out misrouted — the router stops
//! dispatching further shards, waits for the in-flight ones, and
//! reports the fatal outcome of the **lowest-numbered** shard, so
//! concurrent failures surface exactly as they would under the old
//! sequential visit order.
//!
//! # Retry correctness
//!
//! Every query scatter mints one request nonce
//! ([`psketch_server::next_nonce`]) per logical query and replays it on
//! every retry, so a server that already charged the analyst's
//! ε-ledger before the transport died serves the retry **without a
//! second charge** (wire protocol v4 charge-once semantics).

use crate::shard::{ShardMap, ShardMapError};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Estimate};
use psketch_obs::{self as obs, RegistrySnapshot, SpanNode};
use psketch_protocol::{Announcement, CoordinatorStats, QueryCounts, ShardIdentity, Submission};
use psketch_queries::{LinearAnswer, LinearQuery, PlanAccumulator, TermPlan};
use psketch_server::{next_nonce, Client, ClientError, ServerStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Backoff ceiling: however many retries are configured, no single
/// sleep exceeds this.
pub const MAX_BACKOFF: Duration = Duration::from_secs(30);

/// The delay slept before retry `attempt` (1-based): `base · 2^(a−1)`,
/// saturating, capped at [`MAX_BACKOFF`]. Safe for any `attempt` — the
/// shift is clamped and the multiply saturates, so a config with
/// `retries ≥ 32` backs off at the cap instead of overflowing. A zero
/// base means "never sleep" and stays zero at every attempt (`0 · 2^k`
/// is 0, however large the factor).
#[must_use]
pub fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let factor = 1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(0);
    let delay = if factor == 0 {
        // The true factor 2^(attempt−1) no longer fits; any positive
        // base has long since saturated the cap.
        MAX_BACKOFF
    } else {
        base.saturating_mul(factor)
    };
    delay.min(MAX_BACKOFF)
}

/// A `Duration` as waterfall nanoseconds (saturating).
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connect/read/write timeout for every shard connection.
    pub timeout: Duration,
    /// Extra attempts per shard operation after the first failure.
    pub retries: u32,
    /// Base backoff slept before the first retry; doubles per attempt,
    /// capped at [`MAX_BACKOFF`].
    pub backoff: Duration,
    /// The analyst identity declared to every shard (budget accounting).
    pub analyst: u64,
    /// Chunk size for batch submissions (bounds frame sizes).
    pub submit_chunk: usize,
    /// Maximum shard operations in flight at once. `0` (the default)
    /// fans out to every shard concurrently; `1` degrades to the old
    /// sequential visit order (useful as a latency/answer oracle).
    /// Answers are bit-identical at every fanout.
    pub fanout: usize,
    /// `Some(ms)` emits one structured WARN record, with a per-shard
    /// timing breakdown and slowest-shard attribution, for every plan
    /// scatter that took at least this long (`0` logs every query).
    pub slow_query_ms: Option<u64>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(10),
            retries: 2,
            backoff: Duration::from_millis(50),
            analyst: 0,
            submit_chunk: 500,
            fanout: 0,
            slow_query_ms: None,
        }
    }
}

/// Why a shard is missing from an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutage {
    /// The unreachable shard.
    pub shard: u32,
    /// The last transport error observed (after all retries).
    pub error: String,
}

// `Coverage` lives in [`crate::coverage`]: its `missing_fraction` is
// deliberate float math, and this file is a float-free zone (see the
// module docs and the `float-determinism` lint check). Re-exported here
// so `router::Coverage` stays a valid path.
pub use crate::coverage::Coverage;

/// A cluster conjunctive answer: the merged estimate plus coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEstimate {
    /// The merged estimate (bit-identical to a single node over the
    /// responding shards' records).
    pub estimate: Estimate,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster distribution answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDistribution {
    /// Per-value merged estimates, indexed by the LSB-first integer
    /// encoding of the value.
    pub estimates: Vec<Estimate>,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster linear-query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLinear {
    /// The merged answer.
    pub answer: LinearAnswer,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster plan answer: one output answer per plan output plus the
/// merged per-term estimates (each bit-identical to a single node over
/// the responding shards' records).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlanAnswer {
    /// One answer per plan output, in plan order.
    pub outputs: Vec<LinearAnswer>,
    /// The merged estimate of every plan term, aligned with the plan's
    /// term list (richer than the outputs: raw fractions and sample
    /// sizes survive for single-term outputs like distributions).
    pub term_estimates: Vec<Estimate>,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A profiled cluster plan answer: the ordinary answer (bit-identical
/// to an unprofiled [`Router::execute_plan`] over the same records)
/// plus the stitched span waterfall and the nonce it is filed under in
/// every responding shard's recent-trace ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterExplain {
    /// The answer, exactly as the unprofiled path computes it.
    pub answer: ClusterPlanAnswer,
    /// The stitched trace: a `router:plan` root over `router:scatter`
    /// (one `shard:<id>` wrapper per responding shard, each holding the
    /// shard's own span subtree; wrapper self-time is the network +
    /// queue + framing gap the shard never saw) and `router:merge`.
    pub trace: SpanNode,
    /// The query nonce — fetch the same per-shard subtrees later with
    /// [`Router::trace`] while the shards' rings retain them.
    pub nonce: u64,
}

/// The outcome of a cluster batch submission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSubmitReport {
    /// Submissions accepted across all shards.
    pub accepted: u64,
    /// Submissions rejected (malformed or duplicate) across all shards.
    pub rejected: u64,
    /// `(shard, submissions not ingested, error)` for shards that
    /// stayed unreachable; their users were **not** durably submitted.
    pub failed: Vec<(u32, usize, String)>,
}

impl ClusterSubmitReport {
    /// Whether every submission reached its shard.
    #[must_use]
    pub fn fully_ingested(&self) -> bool {
        self.failed.is_empty()
    }
}

/// One shard's row of a cluster status sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard.
    pub shard: u32,
    /// The address serving it.
    pub addr: String,
    /// Its counters, or the transport error that kept it unreachable.
    pub status: Result<(CoordinatorStats, ServerStats), String>,
}

/// A cluster status sweep: per-shard counters plus the exact merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatus {
    /// One row per shard.
    pub per_shard: Vec<ShardStatus>,
    /// Coordinator counters summed over the responding shards (shards
    /// partition the population, so this is the single-node total).
    pub merged: CoordinatorStats,
    /// Server counters merged over the responding shards with
    /// [`ServerStats::merge`] semantics: request/plan/budget counters
    /// sum, but gauge-like fields (uptime) keep the **maximum** — a
    /// 3-shard cluster has not been up three times as long, and a
    /// summed uptime would mask one freshly crashed shard behind two
    /// long-lived ones. Per-shard values stay in `per_shard`.
    pub merged_server: ServerStats,
}

/// Errors from cluster operations.
#[derive(Debug)]
pub enum ClusterError {
    /// The shard map failed validation.
    Map(ShardMapError),
    /// Every shard stayed unreachable after retries.
    AllShardsDown(Vec<ShardOutage>),
    /// A shard answered with a deterministic refusal (budget exhausted,
    /// malformed query, …) — retrying or failing over cannot help,
    /// every shard would refuse identically. When several shards refuse
    /// in the same parallel round, the lowest-numbered one is reported.
    Refused {
        /// The refusing shard.
        shard: u32,
        /// The wire error code (see `psketch_server::wire::codes`).
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The hello handshake found the wrong node behind a mapped
    /// address (stale map or misconfigured node) — merging its counts
    /// would corrupt answers, so this is fatal rather than degraded.
    Misrouted {
        /// The shard the map expects at the address.
        shard: u32,
        /// What the node actually reported.
        found: Option<ShardIdentity>,
    },
    /// Two responding shards publish different announcements.
    AnnouncementMismatch {
        /// The disagreeing shard.
        shard: u32,
    },
    /// The merged counts could not be turned into an answer (e.g. no
    /// responding shard holds any records for the subset).
    Estimation(psketch_core::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Map(e) => write!(f, "{e}"),
            Self::AllShardsDown(outages) => {
                write!(f, "all {} shards unreachable: ", outages.len())?;
                for o in outages {
                    write!(f, "[shard {}: {}] ", o.shard, o.error)?;
                }
                Ok(())
            }
            Self::Refused {
                shard,
                code,
                message,
            } => write!(f, "shard {shard} refused (code {code}): {message}"),
            Self::Misrouted { shard, found } => match found {
                Some(identity) => write!(
                    f,
                    "address mapped to shard {shard} is actually serving shard {identity}"
                ),
                None => write!(
                    f,
                    "address mapped to shard {shard} is serving an unsharded node"
                ),
            },
            Self::AnnouncementMismatch { shard } => write!(
                f,
                "shard {shard} publishes a different announcement than shard 0; \
                 refusing to merge pools"
            ),
            Self::Estimation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ShardMapError> for ClusterError {
    fn from(e: ShardMapError) -> Self {
        Self::Map(e)
    }
}

impl From<psketch_core::Error> for ClusterError {
    fn from(e: psketch_core::Error) -> Self {
        Self::Estimation(e)
    }
}

/// Successful scatter results (per responding shard, ascending) plus
/// outages.
type Gathered<T> = (Vec<(u32, T)>, Vec<ShardOutage>);

/// Outcome of one shard operation after retries.
enum ShardAttempt<T> {
    Ok(T),
    /// Transport-level failure: the shard may be down; degrade.
    Down(String),
    /// Deterministic server refusal: fail the whole operation.
    Refused {
        code: u16,
        message: String,
    },
    /// Wrong node behind the address: fail the whole operation.
    Misrouted(Option<ShardIdentity>),
}

/// One shard operation, boxed for the worker channel. `FnMut` because
/// the retry loop re-invokes it after reconnecting.
type ShardOp<T> = Box<dyn FnMut(&mut Client) -> Result<T, ClientError> + Send>;

/// A job posted to a shard worker.
type Job = Box<dyn FnOnce(&mut ShardConn) + Send>;

/// Reports a shard outcome even if the operation panics: while armed,
/// dropping the reporter (unwinding included) sends a `Down` outcome so
/// [`Router::run_on_shards`] can never hang on a lost result.
struct PanicReporter<T> {
    tx: mpsc::Sender<(u32, ShardAttempt<T>)>,
    shard: u32,
    /// The logical query's trace id, when the operation carries one.
    trace: Option<u64>,
    armed: bool,
}

impl<T> Drop for PanicReporter<T> {
    fn drop(&mut self) {
        if self.armed {
            // A panic silently becoming a `Down` outcome is exactly the
            // failure an operator can't diagnose from coverage alone —
            // leave a structured record before degrading.
            let mut event = obs::log::error("psketch::router").field("shard", self.shard);
            if let Some(trace) = self.trace {
                event = event.trace(trace);
            }
            event.emit("shard operation panicked; degrading shard to Down");
            obs::counter("psketch_router_panics_total", &[]).inc();
            let _ = self.tx.send((
                self.shard,
                ShardAttempt::Down("shard operation panicked".into()),
            ));
        }
    }
}

/// Connection-owning retry parameters, copied per shard worker.
#[derive(Clone)]
struct RetryConfig {
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    analyst: u64,
}

/// One shard's connection state, owned by its worker thread. The
/// connection persists across operations and is reopened (with a fresh
/// hello handshake) after transport failures.
struct ShardConn {
    addr: String,
    /// The identity the map expects behind `addr`.
    expected: ShardIdentity,
    /// Whether an unsharded node is acceptable (single-entry maps).
    standalone_ok: bool,
    retry: RetryConfig,
    client: Option<Client>,
}

impl ShardConn {
    /// Ensures a verified connection, running the hello handshake on
    /// fresh connects.
    fn ensure(&mut self) -> Result<&mut Client, ShardAttempt<()>> {
        if self.client.is_none() {
            let mut client = Client::connect(self.addr.as_str(), self.retry.timeout)
                .map_err(|e| ShardAttempt::Down(e.to_string()))?;
            let identity = match client.hello(self.retry.analyst) {
                Ok(identity) => identity,
                Err(ClientError::Server { code, message }) => {
                    return Err(ShardAttempt::Refused { code, message });
                }
                Err(e) => return Err(ShardAttempt::Down(e.to_string())),
            };
            match identity {
                Some(found) if found == self.expected => {}
                // A standalone node is acceptable only as a 1-shard map.
                None if self.standalone_ok => {}
                other => return Err(ShardAttempt::Misrouted(other)),
            }
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("connection just ensured"))
    }

    /// Runs one operation with retry + capped backoff. Transport
    /// failures retry (reconnecting each time); server error frames
    /// don't.
    fn run<T>(&mut self, op: &mut ShardOp<T>) -> ShardAttempt<T> {
        let mut last_err = String::from("no connection attempt made");
        for attempt in 0..=self.retry.retries {
            if attempt > 0 {
                let delay = backoff_delay(self.retry.backoff, attempt);
                obs::counter("psketch_router_retries_total", &[]).inc();
                obs::histogram("psketch_router_backoff_sleep_nanos", &[])
                    .record(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX));
                std::thread::sleep(delay);
            }
            let client = match self.ensure() {
                Ok(client) => client,
                Err(ShardAttempt::Down(e)) => {
                    last_err = e;
                    continue;
                }
                Err(ShardAttempt::Refused { code, message }) => {
                    return ShardAttempt::Refused { code, message };
                }
                Err(ShardAttempt::Misrouted(found)) => return ShardAttempt::Misrouted(found),
                Err(ShardAttempt::Ok(())) => unreachable!("ensure never yields Ok"),
            };
            match op(client) {
                Ok(value) => return ShardAttempt::Ok(value),
                Err(ClientError::Server { code, message })
                    if code == psketch_server::wire::codes::RETRY_PENDING =>
                {
                    // Transient by contract: our own earlier attempt's
                    // evaluation is still running server-side and its
                    // answer will be cached. The exchange completed, so
                    // the connection stays healthy — just retry.
                    last_err = message;
                }
                Err(ClientError::Server { code, message }) => {
                    return ShardAttempt::Refused { code, message };
                }
                Err(e) => {
                    // The connection is poisoned or gone; reconnect on
                    // the next attempt.
                    last_err = e.to_string();
                    self.client = None;
                }
            }
        }
        ShardAttempt::Down(last_err)
    }
}

/// A long-lived worker thread owning one shard's connection. Jobs
/// arrive over the channel; dropping the sender shuts the worker down
/// (its connection closes with it).
struct ShardWorker {
    tx: Option<mpsc::Sender<Job>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ShardWorker {
    fn spawn(shard: u32, mut conn: ShardConn) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let handle = std::thread::Builder::new()
            .name(format!("psketch-shard-{shard}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    // A panic in client code must not kill the worker:
                    // the job's own guard reports it as a Down outcome,
                    // the (possibly poisoned) connection is dropped,
                    // and the worker keeps serving later queries.
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        job(&mut conn);
                    }))
                    .is_err()
                    {
                        obs::log::error("psketch::router")
                            .field("shard", shard)
                            .field("addr", conn.addr.as_str())
                            .emit("shard worker caught a panic; dropping its connection");
                        conn.client = None;
                    }
                }
            })
            .expect("spawn shard worker thread");
        Self {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn send(&self, job: Job) -> Result<(), ()> {
        self.tx
            .as_ref()
            .expect("worker alive until drop")
            .send(job)
            .map_err(|_| ())
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Close the channel first so the worker's recv loop exits, then
        // join. Workers are idle between router calls, so this does not
        // block on in-flight I/O.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A parallel scatter-gather router over a shard map.
pub struct Router {
    map: ShardMap,
    config: RouterConfig,
    /// One connection-owning worker per shard, in shard order.
    workers: Vec<ShardWorker>,
    /// Last-known accepted-user count per shard (status sweeps).
    known_users: Vec<Option<u64>>,
    announcement: Option<Announcement>,
    /// Per-shard dispatch→result durations of the most recent scatter
    /// (ascending by shard), for slow-query attribution.
    last_timings: Mutex<Vec<(u32, Duration)>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.map.len())
            .field("version", &self.map.version)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Builds a router over a validated map, spawning one (idle) worker
    /// thread per shard. No connections are opened until the first
    /// operation needs them.
    ///
    /// # Errors
    ///
    /// Shard-map validation errors.
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Self, ClusterError> {
        map.validate()?;
        let n = map.len();
        let retry = RetryConfig {
            timeout: config.timeout,
            retries: config.retries,
            backoff: config.backoff,
            analyst: config.analyst,
        };
        let workers = (0..n as u32)
            .map(|shard| {
                ShardWorker::spawn(
                    shard,
                    ShardConn {
                        addr: map.addr_of(shard).to_string(),
                        expected: ShardIdentity {
                            shard_id: shard,
                            shard_count: n as u32,
                        },
                        standalone_ok: n == 1,
                        retry: retry.clone(),
                        client: None,
                    },
                )
            })
            .collect();
        Ok(Self {
            map,
            config,
            workers,
            known_users: vec![None; n],
            announcement: None,
            last_timings: Mutex::new(Vec::new()),
        })
    }

    /// The shard map in force.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The concurrent fan-out in force (`0` = all shards at once).
    fn effective_fanout(&self) -> usize {
        if self.config.fanout == 0 {
            self.map.len()
        } else {
            self.config.fanout
        }
    }

    /// Runs one prepared operation per listed shard **in parallel**
    /// across the shard workers — at most [`RouterConfig::fanout`] in
    /// flight at once — and returns every dispatched shard's outcome in
    /// ascending shard order. Retries (with backoff) happen inside each
    /// worker, so a slow or flapping shard never delays another shard's
    /// attempt.
    ///
    /// Once a **fatal** outcome (refusal, misroute) arrives, no further
    /// shards are dispatched — the operation is doomed, and every extra
    /// dispatch would charge another shard's ε-ledger and burn its
    /// retry schedule for an answer that will be discarded. In-flight
    /// shards are still drained. At `fanout = 1` this reproduces the
    /// old sequential behavior exactly: shards after the first fatal
    /// one are never contacted.
    fn run_on_shards<T: Send + 'static>(
        &self,
        shards: &[u32],
        trace: Option<u64>,
        mut make_op: impl FnMut(u32) -> ShardOp<T>,
    ) -> Vec<(u32, ShardAttempt<T>)> {
        let fanout = self.effective_fanout().max(1);
        let scatter_started = Instant::now();
        let (result_tx, result_rx) = mpsc::channel::<(u32, ShardAttempt<T>)>();
        let mut results: Vec<(u32, ShardAttempt<T>)> = Vec::with_capacity(shards.len());
        let mut dispatched_at: Vec<Option<Instant>> = vec![None; self.map.len()];
        let mut timings: Vec<(u32, Duration)> = Vec::with_capacity(shards.len());
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let mut fatal_seen = false;
        while (next < shards.len() && !fatal_seen) || in_flight > 0 {
            while next < shards.len() && in_flight < fanout && !fatal_seen {
                let shard = shards[next];
                next += 1;
                let mut op = make_op(shard);
                let tx = result_tx.clone();
                let job: Job = Box::new(move |conn| {
                    // If the operation panics, the guard's Drop still
                    // reports an outcome — a panic in client code must
                    // never leave the router waiting forever.
                    let mut guard = PanicReporter {
                        tx,
                        shard,
                        trace,
                        armed: true,
                    };
                    let attempt = conn.run(&mut op);
                    guard.armed = false;
                    // The router may only be draining a fatal result;
                    // a closed channel is fine.
                    let _ = guard.tx.send((shard, attempt));
                });
                if self.workers[shard as usize].send(job).is_err() {
                    // The worker thread died (it never panics by
                    // design, but don't hang the query if it did).
                    results.push((shard, ShardAttempt::Down("shard worker terminated".into())));
                } else {
                    dispatched_at[shard as usize] = Some(Instant::now());
                    in_flight += 1;
                }
            }
            if in_flight > 0 {
                match result_rx.recv() {
                    Ok(result) => {
                        if let Some(started) = dispatched_at[result.0 as usize] {
                            timings.push((result.0, started.elapsed()));
                        }
                        if matches!(result.1, ShardAttempt::Down(_)) {
                            obs::counter("psketch_router_shard_down_total", &[]).inc();
                        }
                        fatal_seen |= matches!(
                            result.1,
                            ShardAttempt::Refused { .. } | ShardAttempt::Misrouted(_)
                        );
                        results.push(result);
                        in_flight -= 1;
                    }
                    Err(_) => break, // unreachable: we hold result_tx
                }
            }
        }
        obs::histogram("psketch_router_scatter_nanos", &[])
            .record_duration(scatter_started.elapsed());
        let attempt_nanos = obs::histogram("psketch_router_shard_attempt_nanos", &[]);
        timings.sort_by_key(|&(shard, _)| shard);
        for &(_, elapsed) in &timings {
            attempt_nanos.record_duration(elapsed);
        }
        *self.last_timings.lock().expect("timing mutex poisoned") = timings;
        // Completion order is nondeterministic; merge order is not.
        results.sort_by_key(|&(shard, _)| shard);
        results
    }

    /// Splits per-shard outcomes into successes and outages, failing
    /// deterministically on fatal outcomes: the scan runs in ascending
    /// shard order, so when several shards fail fatally in one parallel
    /// round the lowest-numbered shard's failure is reported — exactly
    /// what the old sequential visit order produced.
    fn gather<T>(results: Vec<(u32, ShardAttempt<T>)>) -> Result<Gathered<T>, ClusterError> {
        let mut gathered = Vec::new();
        let mut outages = Vec::new();
        for (shard, attempt) in results {
            match attempt {
                ShardAttempt::Ok(value) => gathered.push((shard, value)),
                ShardAttempt::Down(error) => outages.push(ShardOutage { shard, error }),
                ShardAttempt::Refused { code, message } => {
                    return Err(ClusterError::Refused {
                        shard,
                        code,
                        message,
                    });
                }
                ShardAttempt::Misrouted(found) => {
                    return Err(ClusterError::Misrouted { shard, found });
                }
            }
        }
        if gathered.is_empty() {
            return Err(ClusterError::AllShardsDown(outages));
        }
        Ok((gathered, outages))
    }

    /// Scatters one operation over every shard in parallel, gathering
    /// successes and outages. Deterministic refusals and misrouted
    /// nodes abort (lowest shard wins).
    fn scatter<T: Send + 'static>(
        &mut self,
        trace: Option<u64>,
        op: impl Fn(&mut Client) -> Result<T, ClientError> + Send + Sync + 'static,
    ) -> Result<Gathered<T>, ClusterError> {
        let shards: Vec<u32> = (0..self.map.len() as u32).collect();
        let op = Arc::new(op);
        let results = self.run_on_shards(&shards, trace, |_| {
            let op = Arc::clone(&op);
            Box::new(move |client: &mut Client| op(client))
        });
        Self::gather(results)
    }

    fn coverage(
        &self,
        responding: Vec<u32>,
        missing: Vec<ShardOutage>,
        population: u64,
    ) -> Coverage {
        let missing_users = missing
            .iter()
            .map(|o| self.known_users[o.shard as usize])
            .sum::<Option<u64>>();
        Coverage {
            total_shards: self.map.len() as u32,
            responding,
            missing,
            population,
            missing_users,
        }
    }

    /// The deployment's announcement: fetched from every shard in
    /// parallel and verified identical across responding shards (the
    /// lowest responding shard is the reference), then cached.
    ///
    /// # Errors
    ///
    /// Transport errors on all shards, or an announcement mismatch.
    pub fn announcement(&mut self) -> Result<Announcement, ClusterError> {
        if let Some(ann) = &self.announcement {
            return Ok(ann.clone());
        }
        let (gathered, _) = self.scatter(None, Client::announcement)?;
        let (first_shard, reference) = &gathered[0];
        debug_assert!(first_shard < &(self.map.len() as u32));
        for (shard, ann) in &gathered[1..] {
            if ann != reference {
                return Err(ClusterError::AnnouncementMismatch { shard: *shard });
            }
        }
        self.announcement = Some(reference.clone());
        Ok(reference.clone())
    }

    /// The bias the merged-count inversion must use: the **quantized**
    /// `SketchParams::p()`, exactly as the shards' own estimators use it
    /// — the raw `announcement.p` can differ in the low mantissa bits
    /// after `Bias` fixed-point quantization, which would break
    /// bit-identity with single-node answers.
    fn bias(&mut self) -> Result<f64, ClusterError> {
        let params = self.announcement()?.validate()?;
        Ok(params.p())
    }

    /// Submits a batch, fanned out by each user's shard — all shards in
    /// parallel over the workers' persistent connections. Shards that
    /// stay unreachable are reported in the outcome (those users are
    /// *not* ingested); reachable shards are unaffected.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Refused`] if a shard rejects a batch frame
    /// outright, [`ClusterError::Misrouted`] on map/node disagreement.
    pub fn submit_batch(
        &mut self,
        subs: &[Submission],
    ) -> Result<ClusterSubmitReport, ClusterError> {
        let mut per_shard: Vec<Vec<Submission>> = (0..self.map.len()).map(|_| Vec::new()).collect();
        for sub in subs {
            per_shard[self.map.shard_of(sub.user) as usize].push(sub.clone());
        }
        let chunk = self.config.submit_chunk.max(1);
        let batches: Vec<Option<Arc<Vec<Submission>>>> = per_shard
            .into_iter()
            .map(|batch| (!batch.is_empty()).then(|| Arc::new(batch)))
            .collect();
        let sizes: Vec<usize> = batches
            .iter()
            .map(|b| b.as_ref().map_or(0, |batch| batch.len()))
            .collect();
        let shards: Vec<u32> = batches
            .iter()
            .enumerate()
            .filter_map(|(shard, batch)| batch.as_ref().map(|_| shard as u32))
            .collect();
        let results = self.run_on_shards(&shards, None, |shard| {
            let batch = Arc::clone(batches[shard as usize].as_ref().expect("non-empty batch"));
            // Retries resume after the last acked submission instead of
            // re-sending the whole batch: acked chunks are durable, and
            // re-submitting them would mis-report them as duplicate
            // rejections. Only the chunk whose ack was lost in flight
            // can be double-sent (its users dedup server-side).
            let mut processed = 0usize;
            let mut total = psketch_server::SubmitAck::default();
            Box::new(move |client: &mut Client| {
                let (ack, err) = client.submit_chunked_partial(&batch[processed..], chunk);
                total.accepted += ack.accepted;
                total.rejected += ack.rejected;
                processed += usize::try_from(ack.accepted + ack.rejected).unwrap_or(usize::MAX);
                match err {
                    None => Ok(total),
                    Some(e) => Err(e),
                }
            })
        });
        let mut report = ClusterSubmitReport::default();
        for (shard, attempt) in results {
            match attempt {
                ShardAttempt::Ok(ack) => {
                    report.accepted += ack.accepted;
                    report.rejected += ack.rejected;
                }
                ShardAttempt::Down(error) => {
                    report.failed.push((shard, sizes[shard as usize], error));
                }
                ShardAttempt::Refused { code, message } => {
                    return Err(ClusterError::Refused {
                        shard,
                        code,
                        message,
                    });
                }
                ShardAttempt::Misrouted(found) => {
                    return Err(ClusterError::Misrouted { shard, found });
                }
            }
        }
        Ok(report)
    }

    /// Executes a compiled [`TermPlan`] across the cluster — the one
    /// distributed query path every family routes through. Each shard
    /// counts the plan's deduplicated terms in a single generic
    /// `PartialTermCounts` round trip, all shards concurrently; the
    /// router merges the integer counts in shard order, inverts once
    /// per term, and runs the plan's post-combination exactly as the
    /// single-node engine would. One nonce covers the whole logical
    /// query, so per-shard retries never double-charge the analyst.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, or estimation failure (a term whose
    /// merged population is zero — no responding shard holds records
    /// for its subset).
    pub fn execute_plan(&mut self, plan: &TermPlan) -> Result<ClusterPlanAnswer, ClusterError> {
        let p = self.bias()?;
        let terms: Arc<Vec<ConjunctiveQuery>> = Arc::new(plan.terms().to_vec());
        let expected = terms.len();
        let nonce = next_nonce();
        let scatter_started = Instant::now();
        let scattered = self.scatter(Some(nonce), move |client| {
            client.partial_term_counts_nonced(nonce, &terms)
        });
        self.observe_plan_scatter(nonce, expected, scatter_started.elapsed(), &scattered);
        let (gathered, outages) = scattered?;
        self.merge_plan_counts(plan, p, gathered, outages)
    }

    /// The merge half of a plan scatter, shared verbatim by the plain
    /// and profiled paths so profiling cannot perturb a single float
    /// operation: absorb integer counts in ascending shard order,
    /// invert once per term, replay the plan's combination order.
    fn merge_plan_counts(
        &self,
        plan: &TermPlan,
        p: f64,
        gathered: Vec<(u32, Vec<QueryCounts>)>,
        outages: Vec<ShardOutage>,
    ) -> Result<ClusterPlanAnswer, ClusterError> {
        let expected = plan.terms().len();
        let mut acc = PlanAccumulator::for_plan(plan);
        let mut responding = Vec::with_capacity(gathered.len());
        for (shard, counts) in gathered {
            // A reply of the wrong shape is a protocol violation, not an
            // empty share — merging a default would silently drop the
            // shard's population from a "complete" answer.
            if counts.len() != expected {
                return Err(ClusterError::Estimation(psketch_core::Error::Codec {
                    reason: format!(
                        "shard {shard} answered {} counts to a {expected}-term plan",
                        counts.len()
                    ),
                }));
            }
            let pairs: Vec<(u64, u64)> = counts.iter().map(|c| (c.ones, c.population)).collect();
            acc.absorb(&pairs)?;
            responding.push(shard);
        }
        let term_estimates = acc.finish(p)?;
        let outputs = plan.evaluate(&term_estimates)?;
        let coverage = self.coverage(responding, outages, acc.max_population());
        Ok(ClusterPlanAnswer {
            outputs,
            term_estimates,
            coverage,
        })
    }

    /// As [`Router::execute_plan`] with profiling: every shard times its
    /// own pipeline (wire `profile` flag) and the router stitches the
    /// returned subtrees into one waterfall under a `router:plan` root —
    /// `router:scatter` holds one `shard:<id>` wrapper per responding
    /// shard whose duration is the dispatch→result round trip and whose
    /// only child is the shard's own span tree, so the wrapper's *self*
    /// time is the network + queue + framing gap no single node can see;
    /// `router:merge` times the count merge, inversion, and plan
    /// evaluation. The answer is **bit-identical** to the unprofiled
    /// path: the scatter carries the same frames plus one flag byte, and
    /// the merge runs the same code on the same integers.
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn explain_plan(&mut self, plan: &TermPlan) -> Result<ClusterExplain, ClusterError> {
        let overall = Instant::now();
        let p = self.bias()?;
        let terms: Arc<Vec<ConjunctiveQuery>> = Arc::new(plan.terms().to_vec());
        let expected = terms.len();
        let nonce = next_nonce();
        let shards: Vec<u32> = (0..self.map.len() as u32).collect();
        // Per-shard attempt counts: the op runs once per (re)try, so a
        // wrapper showing `attempt=3` had two transport failures behind
        // its round-trip time.
        let attempts: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.map.len()).map(|_| AtomicU64::new(0)).collect());
        let scatter_started = Instant::now();
        let results = self.run_on_shards(&shards, Some(nonce), |shard| {
            let terms = Arc::clone(&terms);
            let attempts = Arc::clone(&attempts);
            Box::new(move |client: &mut Client| {
                // ord: per-shard retry tally read only after join()
                attempts[shard as usize].fetch_add(1, Ordering::Relaxed);
                client.partial_term_counts_traced(nonce, &terms)
            })
        });
        let scatter_elapsed = scatter_started.elapsed();
        let scattered = Self::gather(results);
        self.observe_plan_scatter(nonce, expected, scatter_elapsed, &scattered);
        let (gathered, outages) = scattered?;
        let timings: Vec<(u32, Duration)> = self
            .last_timings
            .lock()
            .expect("timing mutex poisoned")
            .clone();
        let mut counts = Vec::with_capacity(gathered.len());
        let mut subtrees = Vec::with_capacity(gathered.len());
        for (shard, (shard_counts, subtree)) in gathered {
            counts.push((shard, shard_counts));
            subtrees.push((shard, subtree));
        }
        let merge_started = Instant::now();
        let answer = self.merge_plan_counts(plan, p, counts, outages)?;
        let merge_elapsed = merge_started.elapsed();

        let scatter_start_ns = dur_ns(scatter_started.duration_since(overall));
        let mut scatter_span =
            SpanNode::new("router:scatter", scatter_start_ns, dur_ns(scatter_elapsed));
        for (shard, subtree) in subtrees {
            let rpc_ns = timings
                .iter()
                .find(|&&(s, _)| s == shard)
                .map_or(0, |&(_, d)| dur_ns(d));
            let mut wrapper = SpanNode::new(format!("shard:{shard}"), scatter_start_ns, rpc_ns);
            wrapper.attrs.push((
                "attempt".into(),
                // ord: read after the worker joined; join synchronizes
                attempts[shard as usize].load(Ordering::Relaxed),
            ));
            // A shard that skipped profiling (e.g. served the retry from
            // its replay cache) contributes a childless wrapper: the
            // round trip is still attributed, just not broken down.
            if let Some(tree) = subtree {
                wrapper.children.push(tree);
            }
            scatter_span.children.push(wrapper);
        }
        let merge_span = SpanNode::new(
            "router:merge",
            dur_ns(merge_started.duration_since(overall)),
            dur_ns(merge_elapsed),
        );
        let mut root = SpanNode::new("router:plan", 0, dur_ns(overall.elapsed()));
        root.attrs.push(("terms".into(), expected as u64));
        root.attrs
            .push(("shards".into(), answer.coverage.responding.len() as u64));
        root.children.push(scatter_span);
        root.children.push(merge_span);
        Ok(ClusterExplain {
            answer,
            trace: root,
            nonce,
        })
    }

    /// Fetches a recently profiled query's span subtree from every
    /// shard's recent-trace ring by nonce, in parallel. Shards that
    /// never profiled the nonce (or have since evicted it) report
    /// `None`; unreachable shards appear as outages.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, misrouted nodes.
    #[allow(clippy::type_complexity)]
    pub fn trace(
        &mut self,
        nonce: u64,
    ) -> Result<(Vec<(u32, Option<SpanNode>)>, Vec<ShardOutage>), ClusterError> {
        self.scatter(Some(nonce), move |client: &mut Client| client.trace(nonce))
    }

    /// Emits the per-query trace record for a plan scatter: a DEBUG
    /// line always (filter permitting), plus — past the configured
    /// [`RouterConfig::slow_query_ms`] threshold — one WARN with the
    /// per-shard dispatch→result breakdown and slowest-shard
    /// attribution, all correlated by the query nonce.
    fn observe_plan_scatter<T>(
        &self,
        nonce: u64,
        terms: usize,
        elapsed: Duration,
        outcome: &Result<Gathered<T>, ClusterError>,
    ) {
        obs::counter("psketch_router_plans_total", &[]).inc();
        let slow = self
            .config
            .slow_query_ms
            .is_some_and(|threshold_ms| elapsed.as_millis() >= u128::from(threshold_ms));
        let level = if slow {
            obs::log::Level::Warn
        } else {
            obs::log::Level::Debug
        };
        if !obs::log::enabled(level, "psketch::router::query") {
            return;
        }
        let timings = self.last_timings.lock().expect("timing mutex poisoned");
        let breakdown = timings
            .iter()
            .map(|&(shard, d)| format!("{shard}:{}us", d.as_micros()))
            .collect::<Vec<_>>()
            .join(" ");
        let slowest = timings.iter().max_by_key(|&&(_, d)| d).copied();
        drop(timings);
        let mut event = obs::log::event(level, "psketch::router::query")
            .trace(nonce)
            .field("terms", terms)
            .field("elapsed_us", elapsed.as_micros())
            .field("shards", breakdown)
            .field(
                "outcome",
                match outcome {
                    Ok((_, outages)) if outages.is_empty() => "complete".to_string(),
                    Ok((_, outages)) => format!("degraded({} missing)", outages.len()),
                    Err(e) => format!("error({e})"),
                },
            );
        if let Some((shard, d)) = slowest {
            event = event
                .field("slowest_shard", shard)
                .field("slowest_us", d.as_micros());
        }
        event.emit(if slow { "slow query" } else { "plan scatter" });
    }

    /// Estimates one conjunctive frequency (a single-term plan).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn conjunctive(
        &mut self,
        subset: BitSubset,
        value: BitString,
    ) -> Result<ClusterEstimate, ClusterError> {
        let query = ConjunctiveQuery::new(subset, value).map_err(ClusterError::Estimation)?;
        let answer = self.execute_plan(&TermPlan::for_conjunctive(query))?;
        Ok(ClusterEstimate {
            estimate: answer.term_estimates[0],
            coverage: answer.coverage,
        })
    }

    /// Estimates a full `2^k` distribution (a `2^k`-term plan, indexed
    /// by the LSB-first integer encoding of the value).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn distribution(&mut self, subset: BitSubset) -> Result<ClusterDistribution, ClusterError> {
        let answer = self.execute_plan(&TermPlan::for_distribution(&subset))?;
        Ok(ClusterDistribution {
            estimates: answer.term_estimates,
            coverage: answer.coverage,
        })
    }

    /// Evaluates a linear query (a single-output plan): each shard
    /// counts the query's distinct conjunctive terms in one round trip,
    /// and the merged counts are combined exactly as the single-node
    /// engine would (memoized duplicates, original term order).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn linear(&mut self, lq: &LinearQuery) -> Result<ClusterLinear, ClusterError> {
        let plan = TermPlan::compile(lq);
        let mut answer = self.execute_plan(&plan)?;
        let output = answer.outputs.remove(0);
        // The binding population for a linear answer is its smallest
        // term's merged sample.
        answer.coverage.population = u64::try_from(output.min_sample_size).unwrap_or(u64::MAX);
        Ok(ClusterLinear {
            answer: output,
            coverage: answer.coverage,
        })
    }

    /// Sweeps every shard (in parallel) for coordinator + server stats,
    /// refreshing the per-shard population cache used for
    /// degraded-answer reporting.
    ///
    /// Unreachable shards appear with their error instead of counters —
    /// a status sweep never fails outright unless *all* shards are down.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, misrouted nodes.
    pub fn status(&mut self) -> Result<ClusterStatus, ClusterError> {
        let (gathered, outages) = self.scatter(None, |client: &mut Client| {
            let coordinator = client.stats()?;
            let server = client.server_stats()?;
            Ok((coordinator, server))
        })?;
        let mut per_shard: Vec<ShardStatus> = Vec::with_capacity(self.map.len());
        let mut merged = CoordinatorStats::default();
        let mut merged_server = ServerStats::default();
        for (shard, (coordinator, server)) in gathered {
            self.known_users[shard as usize] = Some(coordinator.accepted);
            merged.merge(&coordinator);
            merged_server.merge(&server);
            per_shard.push(ShardStatus {
                shard,
                addr: self.map.addr_of(shard).to_string(),
                status: Ok((coordinator, server)),
            });
        }
        for outage in outages {
            per_shard.push(ShardStatus {
                shard: outage.shard,
                addr: self.map.addr_of(outage.shard).to_string(),
                status: Err(outage.error),
            });
        }
        per_shard.sort_by_key(|s| s.shard);
        Ok(ClusterStatus {
            per_shard,
            merged,
            merged_server,
        })
    }

    /// Gathers every shard's metrics-registry snapshot and merges them
    /// in ascending shard order (the merge is order-insensitive —
    /// counters sum, gauges keep the max, histograms add bucket-wise —
    /// so any order yields bit-identical buckets). Unreachable shards
    /// are reported alongside, like a status sweep.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, misrouted nodes.
    pub fn metrics(&mut self) -> Result<(RegistrySnapshot, Vec<ShardOutage>), ClusterError> {
        let (gathered, outages) = self.scatter(None, Client::metrics)?;
        let mut merged = RegistrySnapshot::default();
        for (_, snap) in gathered {
            merged.merge(&snap);
        }
        Ok((merged, outages))
    }

    /// Pings every shard in parallel; returns the set of unreachable
    /// shards.
    ///
    /// # Errors
    ///
    /// Refusals and misrouted nodes only (a fully down cluster is a
    /// full outage list, not an error).
    pub fn ping(&mut self) -> Result<Vec<ShardOutage>, ClusterError> {
        match self.scatter(None, Client::ping) {
            Ok((_, outages)) => Ok(outages),
            Err(ClusterError::AllShardsDown(outages)) => Ok(outages),
            Err(e) => Err(e),
        }
    }
}

/// One shard's slice of a [`parallel_ingest`] run. Acks are summed
/// per durably committed chunk, so a shard that died mid-batch still
/// reports what it ingested before the failure — only
/// [`ShardIngest::lost`] submissions need re-submitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIngest {
    /// The shard this slice routed to.
    pub shard: u32,
    /// Submissions routed to it.
    pub submitted: usize,
    /// Submissions durably accepted (acked chunks survive a later
    /// failure).
    pub accepted: u64,
    /// Submissions rejected as malformed or duplicate.
    pub rejected: u64,
    /// The transport error that stopped this shard's ingest mid-way,
    /// if any; the unacked remainder was **not** durably ingested.
    pub error: Option<String>,
}

impl ShardIngest {
    /// Submissions neither acked nor rejected — lost to the failure
    /// and in need of re-submission (zero when the shard succeeded).
    #[must_use]
    pub fn lost(&self) -> u64 {
        (self.submitted as u64).saturating_sub(self.accepted + self.rejected)
    }
}

/// Per-shard outcomes of a [`parallel_ingest`] run. Shards succeed and
/// fail independently — a failed shard never erases what the others
/// ingested.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// One row per shard, ascending.
    pub shards: Vec<ShardIngest>,
}

impl IngestReport {
    /// Submissions durably accepted across all shards (including the
    /// committed prefix of shards that later failed).
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.shards.iter().map(|s| s.accepted).sum()
    }

    /// Submissions rejected (malformed or duplicate) across all shards.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Submissions lost to shard failures (need re-submission).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.shards.iter().map(ShardIngest::lost).sum()
    }

    /// Whether every submission reached its shard.
    #[must_use]
    pub fn fully_ingested(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// The shards that failed, with how many submissions each lost.
    pub fn failures(&self) -> impl Iterator<Item = &ShardIngest> {
        self.shards.iter().filter(|s| s.error.is_some())
    }

    /// Collapses the report into totals, erring if any shard failed —
    /// the strict adapter for callers that need all-or-nothing
    /// semantics.
    ///
    /// # Errors
    ///
    /// The first failed shard's error, prefixed with its id.
    pub fn totals(&self) -> Result<(u64, u64), String> {
        if let Some(failed) = self.failures().next() {
            let err = failed.error.as_deref().expect("failure filtered");
            return Err(format!("shard {}: {err}", failed.shard));
        }
        Ok((self.accepted(), self.rejected()))
    }
}

/// Ingests a submission set through one independent connection per
/// shard, in parallel — the scale-out ingest path (a [`Router`] reuses
/// per-shard worker connections, which measures steady-state scatter;
/// this spins up fresh connections sized to the batch).
///
/// Every submission is routed by the map's placement hash; chunking
/// bounds frame sizes. Each shard's outcome is reported independently:
/// a shard that fails mid-batch costs only its own submissions, and the
/// caller can see exactly which users need re-submission instead of
/// mistaking a partial ingest for a total failure.
#[must_use]
pub fn parallel_ingest(
    map: &ShardMap,
    subs: &[Submission],
    timeout: Duration,
    chunk: usize,
) -> IngestReport {
    let mut per_shard: Vec<Vec<Submission>> = (0..map.len()).map(|_| Vec::new()).collect();
    for sub in subs {
        per_shard[map.shard_of(sub.user) as usize].push(sub.clone());
    }
    let shards: Vec<ShardIngest> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .iter()
            .enumerate()
            .map(|(shard, batch)| {
                let addr = map.addr_of(shard as u32).to_string();
                scope.spawn(move || {
                    if batch.is_empty() {
                        return (psketch_server::SubmitAck::default(), None);
                    }
                    match Client::connect(addr.as_str(), timeout) {
                        Err(e) => (psketch_server::SubmitAck::default(), Some(e.to_string())),
                        Ok(mut client) => {
                            let (ack, err) = client.submit_chunked_partial(batch, chunk.max(1));
                            (ack, err.map(|e| e.to_string()))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard, h)| {
                let (ack, error) = h.join().expect("ingest worker panicked");
                ShardIngest {
                    shard: shard as u32,
                    submitted: per_shard[shard].len(),
                    accepted: ack.accepted,
                    rejected: ack.rejected,
                    error,
                }
            })
            .collect()
    });
    IngestReport { shards }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_caps_instead_of_overflowing() {
        let base = Duration::from_millis(50);
        // The old `base * (1 << (attempt - 1))` panicked at attempt 33
        // (u32 shift overflow) and could overflow the Duration multiply
        // well before that. The capped delay must stay monotone and
        // bounded for any attempt.
        assert_eq!(backoff_delay(base, 1), base);
        assert_eq!(backoff_delay(base, 2), base * 2);
        assert_eq!(backoff_delay(base, 5), base * 16);
        assert_eq!(backoff_delay(base, 10), base * 512); // 25.6s, under the cap
        assert_eq!(backoff_delay(base, 11), MAX_BACKOFF); // 51.2s, capped
        let mut last = Duration::ZERO;
        for attempt in 1..=u32::from(u16::MAX) {
            let d = backoff_delay(base, attempt);
            assert!(d <= MAX_BACKOFF, "attempt {attempt} exceeded the cap");
            assert!(d >= last, "attempt {attempt} shrank the delay");
            last = d;
        }
        assert_eq!(backoff_delay(base, 32), MAX_BACKOFF);
        assert_eq!(backoff_delay(base, u32::MAX), MAX_BACKOFF);
        // Huge bases saturate instead of panicking.
        assert_eq!(backoff_delay(Duration::MAX, 31), MAX_BACKOFF);
        // A zero base ("never sleep") stays zero at every attempt,
        // including past the point where the shift factor saturates.
        assert_eq!(backoff_delay(Duration::ZERO, 8), Duration::ZERO);
        assert_eq!(backoff_delay(Duration::ZERO, 33), Duration::ZERO);
        assert_eq!(backoff_delay(Duration::ZERO, u32::MAX), Duration::ZERO);
    }

    #[test]
    fn a_router_config_with_huge_retries_is_usable() {
        // Constructing a router with retries ≥ 32 must not be a latent
        // panic; the backoff schedule it implies is finite and capped.
        let config = RouterConfig {
            retries: 64,
            backoff: Duration::from_secs(20),
            ..RouterConfig::default()
        };
        for attempt in 1..=config.retries {
            assert!(backoff_delay(config.backoff, attempt) <= MAX_BACKOFF);
        }
    }
}
