//! The shard map: which node owns which users.
//!
//! Users are partitioned by a **stable hash of their id** — nothing
//! about a user's data influences placement, and every participant
//! (router, ingest tools, operators reading the map file) computes the
//! same placement from the same map. The map is versioned so a future
//! resharding can be detected across components: a router and an ingest
//! pipeline disagreeing about the map version must not mix traffic.
//!
//! The hash is SplitMix64 (Steele et al., *Fast Splittable Pseudorandom
//! Number Generators*), a fixed public bijection on `u64`: good bit
//! avalanche so consecutive user ids spread evenly, trivially portable,
//! and — like everything else in this system — fine to publish (privacy
//! never rests on placement).

use psketch_core::UserId;
use serde::{Deserialize, Serialize};

/// One node of the deployment: a shard index and the address serving it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardNode {
    /// The shard index, in `0..shards.len()`.
    pub id: u32,
    /// The `host:port` address of the node holding this shard.
    pub addr: String,
}

/// A versioned partition of the user population across nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Monotonic map version; components serving the same deployment
    /// must agree on it.
    pub version: u64,
    /// The nodes, one per shard, ordered by shard id.
    pub shards: Vec<ShardNode>,
}

/// Errors raised by shard-map construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The map holds no shards.
    Empty,
    /// Shard ids are not exactly `0..len` in order.
    MisnumberedShards,
    /// The serialized form could not be parsed.
    Parse(String),
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "shard map holds no shards"),
            Self::MisnumberedShards => {
                write!(f, "shard ids must be exactly 0..N in order")
            }
            Self::Parse(reason) => write!(f, "cannot parse shard map: {reason}"),
        }
    }
}

impl std::error::Error for ShardMapError {}

/// The fixed SplitMix64 finalizer: the public placement hash.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardMap {
    /// Builds a version-`version` map over the given node addresses
    /// (shard `i` is the `i`-th address).
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Empty`] for an empty address list.
    pub fn new(
        version: u64,
        addrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, ShardMapError> {
        let shards: Vec<ShardNode> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, addr)| ShardNode {
                id: i as u32,
                addr: addr.into(),
            })
            .collect();
        if shards.is_empty() {
            return Err(ShardMapError::Empty);
        }
        Ok(Self { version, shards })
    }

    /// Validates an externally supplied map (e.g. a parsed file).
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Empty`] or [`ShardMapError::MisnumberedShards`].
    pub fn validate(&self) -> Result<(), ShardMapError> {
        if self.shards.is_empty() {
            return Err(ShardMapError::Empty);
        }
        if self
            .shards
            .iter()
            .enumerate()
            .any(|(i, node)| node.id as usize != i)
        {
            return Err(ShardMapError::MisnumberedShards);
        }
        Ok(())
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the map holds no shards (never true for a validated map).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning a user: `splitmix64(id) mod N`.
    #[must_use]
    pub fn shard_of(&self, user: UserId) -> u32 {
        (splitmix64(user.0) % self.shards.len() as u64) as u32
    }

    /// The address serving a shard.
    #[must_use]
    pub fn addr_of(&self, shard: u32) -> &str {
        &self.shards[shard as usize].addr
    }

    /// Serializes the map as JSON (the on-disk map-file format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard maps always serialize")
    }

    /// Parses and validates a JSON map file.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Parse`] on malformed JSON, plus the
    /// [`ShardMap::validate`] errors.
    pub fn from_json(raw: &str) -> Result<Self, ShardMapError> {
        let map: Self =
            serde_json::from_str(raw).map_err(|e| ShardMapError::Parse(e.to_string()))?;
        map.validate()?;
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> ShardMap {
        ShardMap::new(1, (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i))).unwrap()
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let m = map(3);
        for id in 0..10_000u64 {
            let shard = m.shard_of(UserId(id));
            assert!(shard < 3);
            assert_eq!(shard, m.shard_of(UserId(id)), "placement must be stable");
        }
    }

    #[test]
    fn placement_spreads_users_roughly_evenly() {
        let m = map(4);
        let mut counts = [0usize; 4];
        for id in 0..40_000u64 {
            counts[m.shard_of(UserId(id)) as usize] += 1;
        }
        for &c in &counts {
            // 10k expected per shard; SplitMix64 avalanche keeps the
            // imbalance well under 5%.
            assert!((9_500..=10_500).contains(&c), "skewed split: {counts:?}");
        }
    }

    #[test]
    fn single_shard_maps_everyone_to_zero() {
        let m = map(1);
        assert_eq!(m.shard_of(UserId(0)), 0);
        assert_eq!(m.shard_of(UserId(u64::MAX)), 0);
    }

    #[test]
    fn json_roundtrip_preserves_the_map() {
        let m = map(3);
        let json = m.to_json();
        assert_eq!(ShardMap::from_json(&json).unwrap(), m);
    }

    #[test]
    fn invalid_maps_are_rejected() {
        assert_eq!(
            ShardMap::new(1, Vec::<String>::new()).unwrap_err(),
            ShardMapError::Empty
        );
        let mut m = map(2);
        m.shards[1].id = 7;
        assert_eq!(m.validate().unwrap_err(), ShardMapError::MisnumberedShards);
        assert!(matches!(
            ShardMap::from_json("{not json"),
            Err(ShardMapError::Parse(_))
        ));
        // Parsed-but-misnumbered also fails.
        let bad = ShardMap {
            version: 1,
            shards: vec![ShardNode {
                id: 3,
                addr: "x".into(),
            }],
        };
        assert!(ShardMap::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn splitmix64_reference_values() {
        // Pin the hash so a future "optimization" cannot silently move
        // every user to a different shard.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
    }
}
