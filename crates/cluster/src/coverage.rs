//! Answer-coverage accounting, kept **out of the router** on purpose.
//!
//! The router's merge path carries a bit-identity contract: a cluster
//! answer must equal the single-node answer over the responding shards'
//! records, so the router proper is a float-free zone (enforced by the
//! `float-determinism` lint check). `missing_fraction` is honest float
//! math — a human-facing ratio, never merged back into an estimate —
//! so it lives here, outside the checked file.

use crate::router::ShardOutage;

/// Which part of the population an answer covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Total shards in the map.
    pub total_shards: u32,
    /// Shards that contributed to the answer.
    pub responding: Vec<u32>,
    /// Shards that stayed unreachable after retries.
    pub missing: Vec<ShardOutage>,
    /// Records merged into the answer (the estimate's sample size).
    pub population: u64,
    /// Accepted users on the missing shards, summed from the most
    /// recent successful [`Router::status`] sweep; `None` if any
    /// missing shard has never been seen.
    ///
    /// [`Router::status`]: crate::router::Router::status
    pub missing_users: Option<u64>,
}

impl Coverage {
    /// Whether every shard contributed (a full-population answer).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// The fraction of the *known* user population the answer misses:
    /// `missing / (covered + missing)`. `None` until a status sweep has
    /// sized every missing shard.
    #[must_use]
    pub fn missing_fraction(&self) -> Option<f64> {
        if self.missing.is_empty() {
            return Some(0.0);
        }
        let missing = self.missing_users? as f64;
        let total = self.population as f64 + missing;
        if total == 0.0 {
            return None;
        }
        Some(missing / total)
    }
}
