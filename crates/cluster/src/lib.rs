//! # psketch-cluster — the sharded multi-node sketch pool
//!
//! The paper's utility bound (Lemma 4.1) improves with the population
//! size `M`, and a real deployment serves millions of users — more than
//! one `psketch-server` process should hold. This crate scales the
//! service horizontally without changing a single answer:
//!
//! * [`shard`] — a versioned, serializable [`ShardMap`] partitioning
//!   users across `N` independent server nodes (each with its own WAL)
//!   by a stable public hash of the user id;
//! * [`router`] — a [`Router`] that fans ingest out by shard and serves
//!   analyst queries by **parallel scatter-gather over exact partial
//!   counts**: one long-lived worker thread per shard owns a persistent
//!   connection, every query family compiles to a
//!   [`TermPlan`](psketch_queries::TermPlan), every shard concurrently
//!   reports integer `(ones, population)` pairs for the plan's
//!   deduplicated terms through one generic `PartialTermCounts` frame,
//!   the router sums them in shard order (integer addition — exact in
//!   any order, merged in a fixed one), and the Algorithm 2 float
//!   inversion plus the plan's post-combination run once on the merged
//!   sums.
//!
//! Because the conjunctive estimator is a pure counting scan, cluster
//! answers are **bit-identical** to a single node holding the union of
//! the records — the property tests in `tests/cluster.rs` verify this
//! for every query family over random shard splits.
//!
//! Node failures degrade instead of skewing: an unreachable shard is
//! retried with backoff, then reported in the answer's
//! [`router::Coverage`] (which shards are missing, and what fraction of
//! the known population they held) while the estimate covers exactly
//! the responding population.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod router;
pub mod shard;

pub use router::{
    backoff_delay, parallel_ingest, ClusterDistribution, ClusterError, ClusterEstimate,
    ClusterLinear, ClusterPlanAnswer, ClusterStatus, ClusterSubmitReport, Coverage, IngestReport,
    Router, RouterConfig, ShardIngest, ShardOutage, ShardStatus, MAX_BACKOFF,
};
pub use shard::{splitmix64, ShardMap, ShardMapError, ShardNode};
