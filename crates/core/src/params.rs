//! Sketching parameters and the central error type.

use crate::profile::SubsetError;
use psketch_prf::{Bias, GlobalKey, PrfKind};
use std::fmt;

/// Maximum supported sketch length in bits.
///
/// Lemma 3.1 gives `ℓ = ⌈log log(M/τ)/|log(1−p²)|⌉`; the paper observes a
/// 10-bit sketch covers "any foreseeable practical use" at `p > 1/4`. We
/// allow up to 30 bits (a billion-key space) which is already far beyond
/// any parameterization reachable from sane `(M, τ, p)`.
pub const MAX_SKETCH_BITS: u8 = 30;

/// All parameters of the sketching mechanism.
///
/// * `p` — the bias of the public function `H` (must satisfy `0 < p < 1/2`);
/// * `sketch_bits` — the key length `ℓ` (so the key space has `2^ℓ` keys);
/// * `key` — the global 256-bit generator key for `H`;
/// * `prf` — which PRF family instantiates `H`.
#[derive(Debug, Clone, Copy)]
pub struct SketchParams {
    p: Bias,
    sketch_bits: u8,
    key: GlobalKey,
    prf: PrfKind,
}

impl SketchParams {
    /// Builds parameters after validation.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidBias`] unless `0 < p < 1/2` (Algorithm 2 divides
    ///   by `1 − 2p`, and the accept probability `p²/(1−p)²` must be `< 1`);
    /// * [`Error::InvalidSketchBits`] unless `1 ≤ ℓ ≤ MAX_SKETCH_BITS`.
    pub fn new(p: f64, sketch_bits: u8, key: GlobalKey, prf: PrfKind) -> Result<Self, Error> {
        let bias = Bias::from_prob(p);
        if p <= 0.0 || !bias.is_below_half() || bias == Bias::ZERO {
            return Err(Error::InvalidBias { p });
        }
        if sketch_bits == 0 || sketch_bits > MAX_SKETCH_BITS {
            return Err(Error::InvalidSketchBits { bits: sketch_bits });
        }
        Ok(Self {
            p: bias,
            sketch_bits,
            key,
            prf,
        })
    }

    /// Convenience constructor with the SipHash PRF.
    ///
    /// # Errors
    ///
    /// As [`SketchParams::new`].
    pub fn with_sip(p: f64, sketch_bits: u8, key: GlobalKey) -> Result<Self, Error> {
        Self::new(p, sketch_bits, key, PrfKind::Sip)
    }

    /// The bias `p` of `H`.
    #[must_use]
    pub const fn bias(&self) -> Bias {
        self.p
    }

    /// The bias as an `f64` probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p.prob()
    }

    /// The sketch length `ℓ` in bits.
    #[must_use]
    pub const fn sketch_bits(&self) -> u8 {
        self.sketch_bits
    }

    /// The key-space size `L = 2^ℓ`.
    #[must_use]
    pub const fn key_space(&self) -> u64 {
        1u64 << self.sketch_bits
    }

    /// The global generator key.
    #[must_use]
    pub const fn global_key(&self) -> &GlobalKey {
        &self.key
    }

    /// The PRF family instantiating `H`.
    #[must_use]
    pub const fn prf_kind(&self) -> PrfKind {
        self.prf
    }

    /// The rejected-key accept probability `r = p²/(1−p)²` of Algorithm 1
    /// step 5.
    #[must_use]
    pub fn accept_prob(&self) -> f64 {
        let p = self.p();
        (p / (1.0 - p)).powi(2)
    }

    /// The Algorithm 2 denominator `1 − 2p` (positive by validation).
    #[must_use]
    pub fn denominator(&self) -> f64 {
        1.0 - 2.0 * self.p()
    }
}

/// Errors raised by the psketch core.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// `p` outside the open interval `(0, 1/2)`.
    InvalidBias {
        /// The rejected value.
        p: f64,
    },
    /// Sketch length outside `[1, MAX_SKETCH_BITS]`.
    InvalidSketchBits {
        /// The rejected length.
        bits: u8,
    },
    /// Algorithm 1 exhausted the key space without accepting (paper step 7:
    /// "If all values of s are exhausted then report failure and stop").
    KeySpaceExhausted {
        /// The key-space size that was exhausted.
        key_space: u64,
    },
    /// A subset was malformed.
    Subset(SubsetError),
    /// A query referenced a subset for which the database has no sketches.
    UnknownSubset {
        /// Debug rendering of the missing subset.
        subset: String,
    },
    /// A query value's width differs from the sketched subset's width.
    WidthMismatch {
        /// Width of the sketched subset.
        subset: usize,
        /// Width of the provided value.
        value: usize,
    },
    /// The database holds no sketches for the requested estimate.
    EmptyDatabase,
    /// A privacy budget would be exceeded.
    BudgetExceeded {
        /// ε already spent.
        spent: f64,
        /// ε available in total.
        budget: f64,
    },
    /// Sketch decoding failed.
    Codec {
        /// Human-readable description of the malformed input.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBias { p } => {
                write!(f, "bias p = {p} must lie strictly inside (0, 1/2)")
            }
            Self::InvalidSketchBits { bits } => write!(
                f,
                "sketch length {bits} bits outside supported range [1, {MAX_SKETCH_BITS}]"
            ),
            Self::KeySpaceExhausted { key_space } => write!(
                f,
                "sketching failed: all {key_space} candidate keys exhausted (Algorithm 1 step 7)"
            ),
            Self::Subset(e) => write!(f, "{e}"),
            Self::UnknownSubset { subset } => {
                write!(f, "no sketches recorded for subset {subset}")
            }
            Self::WidthMismatch { subset, value } => write!(
                f,
                "query value has {value} bits but the sketched subset has {subset}"
            ),
            Self::EmptyDatabase => write!(f, "no sketches available for the estimate"),
            Self::BudgetExceeded { spent, budget } => {
                write!(
                    f,
                    "privacy budget exceeded: spent {spent:.4} of {budget:.4}"
                )
            }
            Self::Codec { reason } => write!(f, "sketch decode error: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Subset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubsetError> for Error {
    fn from(e: SubsetError) -> Self {
        Self::Subset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> GlobalKey {
        GlobalKey::from_seed(1)
    }

    #[test]
    fn accepts_valid_params() {
        let p = SketchParams::with_sip(0.3, 10, key()).unwrap();
        assert!((p.p() - 0.3).abs() < 1e-12);
        assert_eq!(p.sketch_bits(), 10);
        assert_eq!(p.key_space(), 1024);
    }

    #[test]
    fn rejects_bias_at_or_above_half() {
        assert!(matches!(
            SketchParams::with_sip(0.5, 10, key()),
            Err(Error::InvalidBias { .. })
        ));
        assert!(matches!(
            SketchParams::with_sip(0.75, 10, key()),
            Err(Error::InvalidBias { .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_bias() {
        assert!(matches!(
            SketchParams::with_sip(0.0, 10, key()),
            Err(Error::InvalidBias { .. })
        ));
        assert!(matches!(
            SketchParams::with_sip(-0.1, 10, key()),
            Err(Error::InvalidBias { .. })
        ));
    }

    #[test]
    fn rejects_bad_sketch_bits() {
        assert!(matches!(
            SketchParams::with_sip(0.3, 0, key()),
            Err(Error::InvalidSketchBits { .. })
        ));
        assert!(matches!(
            SketchParams::with_sip(0.3, 31, key()),
            Err(Error::InvalidSketchBits { .. })
        ));
    }

    #[test]
    fn accept_prob_formula() {
        let p = SketchParams::with_sip(0.25, 8, key()).unwrap();
        // r = (0.25/0.75)^2 = 1/9.
        assert!((p.accept_prob() - 1.0 / 9.0).abs() < 1e-12);
        assert!((p.denominator() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_display_is_informative() {
        let e = Error::KeySpaceExhausted { key_space: 16 };
        assert!(e.to_string().contains("16"));
        let e = Error::WidthMismatch {
            subset: 3,
            value: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
