//! Algorithm 2 — answering conjunctive queries from sketches.
//!
//! ```text
//! Input: PRF H, database of sketches S(id, B), query subset B, value v.
//! 1: Compute the fraction r̃ of users with H(id, B, v, S(id, B)) = 1.
//! 2: Report r' = (r̃ − p)/(1 − 2p).
//! ```
//!
//! By Lemma 3.2, `E[r̃] = (1−p)·r + p·(1−r)` where `r` is the true fraction
//! of users satisfying `d_B = v`, so step 2 is the unbiased inversion. The
//! Chernoff analysis of Lemma 4.1 gives
//! `Pr[|r' − r| > ε] ≤ exp(−ε²(1−2p)²·M/4)`, independent of `|B|` — the
//! paper's headline property.

use crate::database::{SketchDb, SubsetSnapshot};
use crate::hfun::HFunction;
use crate::params::{Error, SketchParams};
use crate::profile::{BitString, BitSubset};
use psketch_obs as obs;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Below this record count the batched scan stays single-threaded, and
/// above it each worker thread gets at least this many records: the
/// per-thread setup (a scoped spawn + join) only pays for itself on
/// large chunks.
///
/// Re-tuned after the SIMD-lane PRF landed (e25): the 8-lane scan runs
/// ~271M records/s on the reference AVX-512 host (was ~64M/s batched
/// scalar), so a 2^16-record chunk dropped from ~1 ms of work to ~240 µs
/// while a scoped spawn+join measures 9–20 µs — the old threshold would
/// spend up to ~8% of each chunk on thread setup. 2^18 records ≈ 1 ms at
/// lane speed, restoring the ~2% overhead the original tuning chose; the
/// scans this leaves single-threaded finish in under a millisecond
/// anyway.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// A conjunctive query `d_B = v`: "what fraction of users has every
/// attribute in `B` equal to the corresponding bit of `v`?"
///
/// Negated attributes are simply 0-bits of `v`, so this is the paper's full
/// (non-monotone) conjunctive query class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    subset: BitSubset,
    value: BitString,
}

impl ConjunctiveQuery {
    /// Builds a query after width validation.
    ///
    /// # Errors
    ///
    /// [`Error::WidthMismatch`] unless `value.len() == subset.len()`.
    pub fn new(subset: BitSubset, value: BitString) -> Result<Self, Error> {
        if subset.len() != value.len() {
            return Err(Error::WidthMismatch {
                subset: subset.len(),
                value: value.len(),
            });
        }
        Ok(Self { subset, value })
    }

    /// The queried subset `B`.
    #[must_use]
    pub fn subset(&self) -> &BitSubset {
        &self.subset
    }

    /// The queried value `v`.
    #[must_use]
    pub fn value(&self) -> &BitString {
        &self.value
    }

    /// Width `k` of the conjunction.
    #[must_use]
    pub fn width(&self) -> usize {
        self.subset.len()
    }
}

/// The result of a conjunctive estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The Algorithm 2 output `r' = (r̃ − p)/(1 − 2p)`; may fall outside
    /// `[0, 1]` by sampling noise.
    pub fraction: f64,
    /// The raw one-fraction `r̃` before inversion.
    pub raw: f64,
    /// Number of sketches the estimate aggregates.
    pub sample_size: usize,
    /// The bias `p` used in the inversion.
    pub p: f64,
}

impl Estimate {
    /// Runs step 2 of Algorithm 2 on raw satisfying counts: `r̃ = ones/n`,
    /// `r' = (r̃ − p)/(1 − 2p)`.
    ///
    /// This is the *only* place the count→estimate float arithmetic
    /// lives: the estimator's scan paths and the cluster router's
    /// merged-count path both call it, so an estimate computed from
    /// exactly-summed per-shard counts is bit-identical to the one a
    /// single node computes over the same records.
    #[must_use]
    pub fn from_counts(ones: u64, n: u64, p: f64) -> Self {
        let raw = ones as f64 / n as f64;
        Self {
            fraction: (raw - p) / (1.0 - 2.0 * p),
            raw,
            sample_size: usize::try_from(n).unwrap_or(usize::MAX),
            p,
        }
    }

    /// The estimate clamped to the feasible range `[0, 1]`.
    #[must_use]
    pub fn clamped(&self) -> f64 {
        self.fraction.clamp(0.0, 1.0)
    }

    /// Estimated *count* of satisfying users in a population of `m`.
    #[must_use]
    pub fn count(&self, m: usize) -> f64 {
        self.clamped() * m as f64
    }

    /// Two-sided `1 − δ` confidence half-width from Hoeffding's bound.
    ///
    /// `r̃` deviates from its mean by more than `t` with probability at most
    /// `2·exp(−2·n·t²)`; the inversion scales deviations by `1/(1 − 2p)`.
    #[must_use]
    pub fn half_width(&self, delta: f64) -> f64 {
        if self.sample_size == 0 {
            return f64::INFINITY;
        }
        let n = self.sample_size as f64;
        let t = ((2.0 / delta).ln() / (2.0 * n)).sqrt();
        t / (1.0 - 2.0 * self.p)
    }

    /// The Lemma 4.1 failure probability for error tolerance `eps`:
    /// `exp(−ε²(1−2p)²·n/4)`.
    #[must_use]
    pub fn lemma41_failure_prob(&self, eps: f64) -> f64 {
        let n = self.sample_size as f64;
        (-eps * eps * (1.0 - 2.0 * self.p).powi(2) * n / 4.0).exp()
    }
}

/// The analyst-side estimator: Algorithm 2 over a [`SketchDb`].
#[derive(Debug, Clone)]
pub struct ConjunctiveEstimator {
    params: SketchParams,
    h: HFunction,
}

impl ConjunctiveEstimator {
    /// Builds an estimator. Must use the *same* parameters (bias, key,
    /// PRF family) as the sketchers that produced the database.
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        let h = HFunction::new(&params);
        Self { params, h }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Runs Algorithm 2 for `query` against `db` — the batched path.
    ///
    /// Takes a columnar [`SubsetSnapshot`] (no record cloning), prepares
    /// the PRF input template for `(B, v)` once, and streams the id/key
    /// columns through the batch PRF entry point, splitting the columns
    /// across threads for large shards. The result is bit-identical to
    /// [`ConjunctiveEstimator::estimate_scalar`]: the per-record PRF
    /// inputs are byte-equal and the one-counts are summed exactly.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownSubset`] if the database has no sketches for the
    ///   query's subset;
    /// * [`Error::EmptyDatabase`] if the subset exists but holds no records.
    pub fn estimate(&self, db: &SketchDb, query: &ConjunctiveQuery) -> Result<Estimate, Error> {
        let snapshot = db.snapshot(query.subset())?;
        if snapshot.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let ones = self.count_ones(&snapshot, query);
        Ok(self.finish(ones, snapshot.len()))
    }

    /// Runs Algorithm 2 against an already-taken snapshot (lets callers
    /// evaluate many queries against one consistent view of a shard).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if the snapshot holds no records.
    pub fn estimate_snapshot(
        &self,
        snapshot: &SubsetSnapshot,
        query: &ConjunctiveQuery,
    ) -> Result<Estimate, Error> {
        if snapshot.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let ones = self.count_ones(snapshot, query);
        Ok(self.finish(ones, snapshot.len()))
    }

    /// The raw satisfying count behind [`ConjunctiveEstimator::estimate`]:
    /// `(ones, population)` where `ones` is the number of records with
    /// `H(id, B, v, s) = 1` and `population` the shard's record count.
    ///
    /// These are exact integers, so counts taken on disjoint partitions
    /// of a pool sum to exactly the whole-pool counts — the primitive a
    /// sharded deployment merges before one call to
    /// [`Estimate::from_counts`] reproduces the single-node answer
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`].
    pub fn count(&self, db: &SketchDb, query: &ConjunctiveQuery) -> Result<(u64, u64), Error> {
        let snapshot = db.snapshot(query.subset())?;
        if snapshot.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let ones = self.count_ones(&snapshot, query);
        Ok((ones as u64, snapshot.len() as u64))
    }

    /// The raw per-value satisfying counts behind
    /// [`ConjunctiveEstimator::estimate_distribution`]: one count per
    /// LSB-first value of the subset, plus the shard population.
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate_distribution`].
    pub fn count_distribution(
        &self,
        db: &SketchDb,
        subset: &BitSubset,
    ) -> Result<(Vec<u64>, u64), Error> {
        assert!(
            subset.len() <= 20,
            "count_distribution supports at most 20-bit subsets"
        );
        let snapshot = db.snapshot(subset)?;
        if snapshot.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let ones = self.distribution_ones(&snapshot, subset);
        Ok((
            ones.into_iter().map(|c| c as u64).collect(),
            snapshot.len() as u64,
        ))
    }

    /// Batched raw counts for a *plan's term list*: one `(ones,
    /// population)` pair per query, in input order.
    ///
    /// This is the batch entry point plan executors drive. Terms are
    /// grouped by subset so each distinct subset's snapshot is taken
    /// once and every term on it scans the same consistent columns; a
    /// group that covers most of a narrow subset's `2^k` value space is
    /// answered by the one-pass distribution tally instead of per-term
    /// scans (the counts are identical either way — both are exact
    /// integer tallies over the same records).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSubset`] if any term's subset has no sketches —
    /// the local-engine semantics, matching what a per-term
    /// [`ConjunctiveEstimator::estimate`] loop would report.
    pub fn count_terms(
        &self,
        db: &SketchDb,
        queries: &[ConjunctiveQuery],
    ) -> Result<Vec<(u64, u64)>, Error> {
        self.count_terms_impl(db, queries, true)
    }

    /// As [`ConjunctiveEstimator::count_terms`], but a subset this pool
    /// holds no sketches for reports `(0, 0)` instead of failing — the
    /// *shard* semantics: a shard's share of an unknown subset is
    /// genuinely empty and merges as a no-op, which must not fail the
    /// whole scatter.
    #[must_use]
    pub fn count_terms_partial(
        &self,
        db: &SketchDb,
        queries: &[ConjunctiveQuery],
    ) -> Vec<(u64, u64)> {
        self.count_terms_impl(db, queries, false)
            .expect("infallible without strict subset checks")
    }

    fn count_terms_impl(
        &self,
        db: &SketchDb,
        queries: &[ConjunctiveQuery],
        strict: bool,
    ) -> Result<Vec<(u64, u64)>, Error> {
        let mut counts = vec![(0u64, 0u64); queries.len()];
        // Group term indices by subset (order-preserving).
        let mut groups: Vec<(&BitSubset, Vec<usize>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match groups.iter_mut().find(|(s, _)| *s == q.subset()) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((q.subset(), vec![i])),
            }
        }
        for (subset, idxs) in groups {
            let snapshot = match db.snapshot(subset) {
                Ok(s) => s,
                Err(e @ Error::UnknownSubset { .. }) => {
                    if strict {
                        return Err(e);
                    }
                    continue; // empty share: (0, 0) for every term
                }
                Err(e) => return Err(e),
            };
            let n = snapshot.len() as u64;
            let k = subset.len();
            // Dense groups over a narrow subset: one distribution pass.
            if k <= 16 && idxs.len() as u64 > (1u64 << k) / 2 && !snapshot.is_empty() {
                let ones = self.distribution_ones(&snapshot, subset);
                for &i in &idxs {
                    let value = queries[i].value();
                    let mut index = 0usize;
                    for b in 0..k {
                        if value.get(b) {
                            index |= 1 << b;
                        }
                    }
                    counts[i] = (ones[index] as u64, n);
                }
                continue;
            }
            for &i in &idxs {
                let ones = if snapshot.is_empty() {
                    0
                } else {
                    self.count_ones(&snapshot, &queries[i])
                };
                counts[i] = (ones as u64, n);
            }
        }
        Ok(counts)
    }

    /// The pre-refactor scalar reference path: a row-oriented copy of the
    /// records (the old `SketchDb::records` read) and one full input
    /// encoding — with its allocations — per record.
    ///
    /// Kept as the correctness oracle for the batched path (the
    /// equivalence property tests compare the two bit-for-bit) and as the
    /// baseline in the throughput benchmarks.
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`].
    pub fn estimate_scalar(
        &self,
        db: &SketchDb,
        query: &ConjunctiveQuery,
    ) -> Result<Estimate, Error> {
        let records = db.records(query.subset())?;
        if records.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let ones = records
            .iter()
            .filter(|rec| {
                self.h
                    .eval(rec.id, query.subset(), query.value(), rec.sketch.key)
            })
            .count();
        Ok(self.finish(ones, records.len()))
    }

    /// Estimates all `2^k` value frequencies over one sketched subset in
    /// a single pass.
    ///
    /// Each user's sketch supports *every* value query on its subset, so
    /// one scan over the records suffices: per record, the encoded prefix
    /// `domain ‖ id ‖ B` is reused across all `2^k` spliced values
    /// instead of running `2^k` independent full scans. Values are
    /// indexed by their LSB-first integer encoding.
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`]. Additionally requires
    /// `subset.len() ≤ 20` to keep the output size sane.
    pub fn estimate_distribution(
        &self,
        db: &SketchDb,
        subset: &BitSubset,
    ) -> Result<Vec<Estimate>, Error> {
        assert!(
            subset.len() <= 20,
            "estimate_distribution supports at most 20-bit subsets"
        );
        let snapshot = db.snapshot(subset)?;
        if snapshot.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let n = snapshot.len();
        let ones = self.distribution_ones(&snapshot, subset);
        Ok(ones
            .into_iter()
            .map(|count| self.finish(count, n))
            .collect())
    }

    /// One-pass per-value satisfying counts over a snapshot (the shared
    /// scan behind `estimate_distribution` and `count_distribution`).
    fn distribution_ones(&self, snapshot: &SubsetSnapshot, subset: &BitSubset) -> Vec<usize> {
        let values = 1usize << subset.len();
        let n = snapshot.len();
        let threads = self.thread_count(n.saturating_mul(values));
        let started = obs::enabled().then(Instant::now);
        let span = scan_span(n, threads);
        let ones = self.distribution_ones_inner(snapshot, subset, values, threads);
        drop(span);
        if let Some(started) = started {
            record_scan("distribution", n, threads, started.elapsed());
        }
        ones
    }

    fn distribution_ones_inner(
        &self,
        snapshot: &SubsetSnapshot,
        subset: &BitSubset,
        values: usize,
        threads: usize,
    ) -> Vec<usize> {
        let n = snapshot.len();
        let ids = snapshot.ids();
        let keys = snapshot.keys();
        if threads <= 1 {
            let mut prepared = self.h.prepare(subset, subset.len());
            let mut ones = vec![0usize; values];
            for (&id, &key) in ids.iter().zip(keys) {
                prepared.tally_record(id, key, &mut ones);
            }
            ones
        } else {
            // Chunk the records; each thread tallies into its own vector
            // and the tallies are summed — identical to the sequential
            // counts because addition of exact counts commutes.
            let chunk = n.div_ceil(threads);
            let prepared = self.h.prepare(subset, subset.len());
            let partials: Vec<Vec<usize>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .chunks(chunk)
                    .zip(keys.chunks(chunk))
                    .map(|(ids, keys)| {
                        let mut prepared = prepared.clone();
                        scope.spawn(move || {
                            let mut ones = vec![0usize; values];
                            for (&id, &key) in ids.iter().zip(keys) {
                                prepared.tally_record(id, key, &mut ones);
                            }
                            ones
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("tally worker panicked"))
                    .collect()
            });
            let mut ones = vec![0usize; values];
            for partial in partials {
                for (total, part) in ones.iter_mut().zip(partial) {
                    *total += part;
                }
            }
            ones
        }
    }

    /// Counts records with `H(id, B, v, s) = 1` over the snapshot's
    /// columns, splitting across threads above [`PARALLEL_THRESHOLD`].
    fn count_ones(&self, snapshot: &SubsetSnapshot, query: &ConjunctiveQuery) -> usize {
        let ids = snapshot.ids();
        let threads = self.thread_count(ids.len());
        let started = obs::enabled().then(Instant::now);
        let span = scan_span(ids.len(), threads);
        let ones = self.count_ones_inner(snapshot, query, threads);
        drop(span);
        if let Some(started) = started {
            record_scan("conjunctive", ids.len(), threads, started.elapsed());
        }
        ones
    }

    fn count_ones_inner(
        &self,
        snapshot: &SubsetSnapshot,
        query: &ConjunctiveQuery,
        threads: usize,
    ) -> usize {
        let ids = snapshot.ids();
        let keys = snapshot.keys();
        let prepared = self.h.prepare_query(query.subset(), query.value());
        if threads <= 1 {
            return prepared.count_ones(ids, keys);
        }
        let chunk = ids.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .zip(keys.chunks(chunk))
                .map(|(ids, keys)| {
                    let prepared = &prepared;
                    scope.spawn(move || prepared.count_ones(ids, keys))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("count worker panicked"))
                .sum()
        })
    }

    /// Number of worker threads for a scan of `work` PRF evaluations.
    fn thread_count(&self, work: usize) -> usize {
        if work < PARALLEL_THRESHOLD {
            return 1;
        }
        available_workers().min(work / PARALLEL_THRESHOLD + 1)
    }

    /// Step 2 of Algorithm 2: the unbiased inversion.
    fn finish(&self, ones: usize, n: usize) -> Estimate {
        Estimate::from_counts(ones as u64, n as u64, self.params.p())
    }
}

/// Records one sketch scan into the process metrics registry, labeled by
/// query kind, the active SIMD lane width, and the thread count the
/// dispatcher chose — the three knobs that determine scan throughput.
/// Called once per scan (never per record), so the registry lookup is
/// noise next to the scan itself.
/// Opens the per-scan profiling span (inert — one relaxed load — unless
/// the request thread has a trace open). One span per scan, not per
/// record: a profiled plan grows one `estimator:scan` child per term.
fn scan_span(records: usize, threads: usize) -> obs::SpanGuard {
    let span = obs::span::enter("estimator:scan");
    span.attr("records", records as u64);
    span.attr("threads", threads as u64);
    span.attr("lanes", psketch_prf::lane_width() as u64);
    span
}

fn record_scan(kind: &str, records: usize, threads: usize, elapsed: std::time::Duration) {
    let lanes = psketch_prf::lane_width().to_string();
    let threads = threads.to_string();
    let labels = [
        ("kind", kind),
        ("lanes", lanes.as_str()),
        ("threads", threads.as_str()),
    ];
    obs::histogram("psketch_scan_nanos", &labels).record_duration(elapsed);
    obs::counter("psketch_scan_records_total", &labels).add(records as u64);
    obs::counter("psketch_scans_total", &labels).inc();
}

/// The host's available parallelism, probed once per process.
///
/// `std::thread::available_parallelism()` is a syscall (it walks the
/// cgroup quota and CPU affinity mask on Linux); every scan consults
/// [`ConjunctiveEstimator::thread_count`], so the probe is cached here to
/// keep the dispatch decision a branch and a load.
fn available_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profile, UserId};
    use crate::sketcher::Sketcher;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn params(p: f64) -> SketchParams {
        SketchParams::with_sip(p, 10, GlobalKey::from_seed(21)).unwrap()
    }

    /// Builds a database where a known fraction of users satisfies the
    /// all-ones value on a k-bit subset.
    fn build_db(p: f64, k: usize, m: u64, true_fraction: f64) -> (SketchDb, BitSubset) {
        let params = params(p);
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, k as u32);
        let db = SketchDb::new();
        let mut rng = Prg::seed_from_u64(77);
        let cutoff = (true_fraction * m as f64) as u64;
        for i in 0..m {
            let profile = if i < cutoff {
                Profile::from_bits(&vec![true; k])
            } else {
                // A profile differing in the first bit.
                let mut bits = vec![true; k];
                bits[0] = false;
                Profile::from_bits(&bits)
            };
            let s = sketcher
                .sketch(UserId(i), &profile, &subset, &mut rng)
                .unwrap();
            db.insert(subset.clone(), UserId(i), s);
        }
        (db, subset)
    }

    #[test]
    fn recovers_planted_fraction() {
        let p = 0.3;
        let m = 20_000;
        let (db, subset) = build_db(p, 4, m, 0.35);
        let est = ConjunctiveEstimator::new(params(p));
        let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true; 4])).unwrap();
        let e = est.estimate(&db, &q).unwrap();
        assert_eq!(e.sample_size, m as usize);
        assert!(
            (e.fraction - 0.35).abs() < 0.03,
            "estimate {} should be near 0.35",
            e.fraction
        );
    }

    #[test]
    fn error_is_independent_of_width() {
        // The defining property: at fixed M, widening the conjunction does
        // not blow up the error.
        let p = 0.3;
        let m = 8_000;
        for k in [2usize, 8, 16] {
            let (db, subset) = build_db(p, k, m, 0.5);
            let est = ConjunctiveEstimator::new(params(p));
            let q = ConjunctiveQuery::new(subset, BitString::from_bits(&vec![true; k])).unwrap();
            let e = est.estimate(&db, &q).unwrap();
            assert!(
                (e.fraction - 0.5).abs() < 0.05,
                "width {k}: estimate {} drifted",
                e.fraction
            );
        }
    }

    #[test]
    fn negated_attributes_are_supported() {
        // Count the complement population: users with first bit = 0.
        let p = 0.25;
        let m = 10_000;
        let (db, subset) = build_db(p, 4, m, 0.2);
        let est = ConjunctiveEstimator::new(params(p));
        let mut v = vec![true; 4];
        v[0] = false; // negation of x0, conjunction of the rest
        let q = ConjunctiveQuery::new(subset, BitString::from_bits(&v)).unwrap();
        let e = est.estimate(&db, &q).unwrap();
        assert!(
            (e.fraction - 0.8).abs() < 0.04,
            "negated estimate {} should be near 0.8",
            e.fraction
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let subset = BitSubset::range(0, 3);
        assert!(matches!(
            ConjunctiveQuery::new(subset, BitString::from_bits(&[true])),
            Err(Error::WidthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_subset_surfaces() {
        let est = ConjunctiveEstimator::new(params(0.3));
        let db = SketchDb::new();
        let q = ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap();
        assert!(matches!(
            est.estimate(&db, &q),
            Err(Error::UnknownSubset { .. })
        ));
    }

    #[test]
    fn estimate_bookkeeping() {
        let e = Estimate {
            fraction: 1.2,
            raw: 0.9,
            sample_size: 100,
            p: 0.3,
        };
        assert_eq!(e.clamped(), 1.0);
        assert_eq!(e.count(50), 50.0);
        assert!(e.half_width(0.05) > 0.0);
        assert!(e.lemma41_failure_prob(0.1) < 1.0);
        let empty = Estimate {
            fraction: 0.0,
            raw: 0.0,
            sample_size: 0,
            p: 0.3,
        };
        assert_eq!(empty.half_width(0.05), f64::INFINITY);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let mk = |n| Estimate {
            fraction: 0.5,
            raw: 0.5,
            sample_size: n,
            p: 0.3,
        };
        assert!(mk(10_000).half_width(0.05) < mk(100).half_width(0.05) / 5.0);
    }

    #[test]
    fn batched_equals_scalar_bitwise() {
        // The acceptance bar for the batched pipeline: not "close", but
        // bit-identical to the scalar reference path.
        let p = 0.3;
        let (db, subset) = build_db(p, 5, 3_000, 0.4);
        let est = ConjunctiveEstimator::new(params(p));
        for value in [0u64, 1, 17, 31] {
            let q = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(value, 5)).unwrap();
            let batched = est.estimate(&db, &q).unwrap();
            let scalar = est.estimate_scalar(&db, &q).unwrap();
            assert_eq!(batched.fraction.to_bits(), scalar.fraction.to_bits());
            assert_eq!(batched.raw.to_bits(), scalar.raw.to_bits());
            assert_eq!(batched.sample_size, scalar.sample_size);
        }
    }

    #[test]
    fn snapshot_estimation_matches_db_estimation() {
        let p = 0.25;
        let (db, subset) = build_db(p, 3, 2_000, 0.5);
        let est = ConjunctiveEstimator::new(params(p));
        let snap = db.snapshot(&subset).unwrap();
        let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true; 3])).unwrap();
        assert_eq!(
            est.estimate_snapshot(&snap, &q).unwrap(),
            est.estimate(&db, &q).unwrap()
        );
    }

    #[test]
    fn one_pass_distribution_equals_scalar_scans() {
        let p = 0.3;
        let (db, subset) = build_db(p, 4, 1_500, 0.6);
        let est = ConjunctiveEstimator::new(params(p));
        let dist = est.estimate_distribution(&db, &subset).unwrap();
        assert_eq!(dist.len(), 16);
        for (value, batched) in dist.iter().enumerate() {
            let q = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(value as u64, 4))
                .unwrap();
            let scalar = est.estimate_scalar(&db, &q).unwrap();
            assert_eq!(batched.fraction.to_bits(), scalar.fraction.to_bits());
            assert_eq!(batched.raw.to_bits(), scalar.raw.to_bits());
        }
    }

    #[test]
    fn parallel_chunking_is_exact() {
        // Cross the parallel threshold and verify against the scalar path
        // (chunked counts must sum to exactly the sequential count).
        let p = 0.3;
        let m = (super::PARALLEL_THRESHOLD + 1_000) as u64;
        let (db, subset) = build_db(p, 2, m, 0.5);
        let est = ConjunctiveEstimator::new(params(p));
        let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true; 2])).unwrap();
        let batched = est.estimate(&db, &q).unwrap();
        let scalar = est.estimate_scalar(&db, &q).unwrap();
        assert_eq!(batched.raw.to_bits(), scalar.raw.to_bits());
        assert_eq!(batched.sample_size, m as usize);
    }

    #[test]
    fn counts_invert_to_the_estimate_bitwise() {
        let p = 0.3;
        let (db, subset) = build_db(p, 4, 2_500, 0.35);
        let est = ConjunctiveEstimator::new(params(p));
        let q = ConjunctiveQuery::new(subset.clone(), BitString::from_bits(&[true; 4])).unwrap();
        let (ones, n) = est.count(&db, &q).unwrap();
        assert_eq!(n, 2_500);
        let from_counts = Estimate::from_counts(ones, n, p);
        let scanned = est.estimate(&db, &q).unwrap();
        assert_eq!(from_counts.fraction.to_bits(), scanned.fraction.to_bits());
        assert_eq!(from_counts.raw.to_bits(), scanned.raw.to_bits());
        assert_eq!(from_counts.sample_size, scanned.sample_size);

        let (dist_ones, dist_n) = est.count_distribution(&db, &subset).unwrap();
        let dist = est.estimate_distribution(&db, &subset).unwrap();
        assert_eq!(dist_ones.len(), 16);
        for (count, scanned) in dist_ones.iter().zip(&dist) {
            let e = Estimate::from_counts(*count, dist_n, p);
            assert_eq!(e.fraction.to_bits(), scanned.fraction.to_bits());
        }
    }

    #[test]
    fn count_terms_matches_per_term_counts() {
        let p = 0.3;
        let (db, subset) = build_db(p, 4, 2_000, 0.4);
        let est = ConjunctiveEstimator::new(params(p));
        // A sparse mix (per-term scan path) plus the full value space
        // (the one-pass distribution path) — both must match the
        // per-term oracle exactly.
        let sparse: Vec<ConjunctiveQuery> = [3u64, 9]
            .iter()
            .map(|&v| ConjunctiveQuery::new(subset.clone(), BitString::from_u64(v, 4)).unwrap())
            .collect();
        let dense: Vec<ConjunctiveQuery> = (0..16u64)
            .map(|v| ConjunctiveQuery::new(subset.clone(), BitString::from_u64(v, 4)).unwrap())
            .collect();
        for queries in [&sparse, &dense] {
            let batched = est.count_terms(&db, queries).unwrap();
            let partial = est.count_terms_partial(&db, queries);
            assert_eq!(batched, partial);
            for (q, &(ones, n)) in queries.iter().zip(&batched) {
                assert_eq!((ones, n), est.count(&db, q).unwrap());
            }
        }
        // Unknown subsets: strict errors, partial reports empty shares.
        let unknown =
            ConjunctiveQuery::new(BitSubset::single(40), BitString::from_bits(&[true])).unwrap();
        assert!(matches!(
            est.count_terms(&db, std::slice::from_ref(&unknown)),
            Err(Error::UnknownSubset { .. })
        ));
        assert_eq!(est.count_terms_partial(&db, &[unknown]), vec![(0, 0)]);
    }

    #[test]
    fn partitioned_counts_sum_to_whole_pool_counts() {
        // The sharding invariant: counts over any partition of the
        // records sum to exactly the whole-pool counts.
        let p = 0.25;
        let params = params(p);
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, 3);
        let whole = SketchDb::new();
        let shards = [SketchDb::new(), SketchDb::new(), SketchDb::new()];
        let mut rng = Prg::seed_from_u64(99);
        for i in 0..3_000u64 {
            let profile = Profile::from_bits(&[i % 2 == 0, i % 3 == 0, i % 5 == 0]);
            let s = sketcher
                .sketch(UserId(i), &profile, &subset, &mut rng)
                .unwrap();
            whole.insert(subset.clone(), UserId(i), s);
            shards[(i % 3) as usize].insert(subset.clone(), UserId(i), s);
        }
        let est = ConjunctiveEstimator::new(params);
        let q = ConjunctiveQuery::new(subset.clone(), BitString::from_bits(&[true; 3])).unwrap();
        let (whole_ones, whole_n) = est.count(&whole, &q).unwrap();
        let mut ones = 0;
        let mut n = 0;
        for shard in &shards {
            let (o, m) = est.count(shard, &q).unwrap();
            ones += o;
            n += m;
        }
        assert_eq!((ones, n), (whole_ones, whole_n));
    }

    #[test]
    fn distribution_sums_to_approximately_one() {
        let p = 0.3;
        let (db, subset) = build_db(p, 3, 12_000, 0.6);
        let est = ConjunctiveEstimator::new(params(p));
        let dist = est.estimate_distribution(&db, &subset).unwrap();
        assert_eq!(dist.len(), 8);
        let total: f64 = dist.iter().map(|e| e.fraction).sum();
        // Each of the 8 estimates is unbiased; their sum concentrates at 1.
        assert!((total - 1.0).abs() < 0.1, "distribution total {total}");
    }
}
