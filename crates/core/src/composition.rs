//! Advanced composition — the Conclusions' "quadratically more sketches".
//!
//! §5: "if one is willing to relax privacy guarantees from deterministic
//! to negligibly small probability of leak then the result of Theorem 3.4
//! can be improved to allow quadratically more sketches while giving
//! essentially the same privacy guarantees."
//!
//! This module implements that improvement with the now-standard advanced
//! composition bound (Dwork–Rothblum–Vadhan): a mechanism whose per-output
//! log-likelihood ratio is bounded by `ε₀` (which Lemma 3.3 gives with
//! `ε₀ = 4·ln((1−p)/p)`) composes `l` times to, with probability `≥ 1−δ`,
//!
//! `ε(l, δ) = ε₀·√(2·l·ln(1/δ)) + l·ε₀·(e^{ε₀} − 1)`.
//!
//! For `p` near 1/2 (small `ε₀`) the linear term is second order, so the
//! number of sketches affordable at a fixed total budget grows like
//! `(ε/ε₀)²` instead of the basic composition's `ε/ε₀` — the promised
//! quadratic gain. Experiment E16 tabulates it.

use crate::theory::privacy_ratio_bound;

/// The per-sketch worst-case log-likelihood ratio `ε₀ = 4·ln((1−p)/p)`.
///
/// # Panics
///
/// Panics unless `0 < p < 1/2`.
#[must_use]
pub fn per_sketch_epsilon(p: f64) -> f64 {
    assert!(p > 0.0 && p < 0.5, "p must be in (0, 1/2)");
    privacy_ratio_bound(p).ln()
}

/// Advanced-composition total ε after `l` sketches at bias `p`, holding
/// with probability `1 − δ` over the mechanism's randomness.
///
/// # Panics
///
/// Panics unless `0 < p < 1/2`, `l ≥ 1` and `0 < δ < 1`.
#[must_use]
pub fn epsilon_advanced(p: f64, l: u32, delta: f64) -> f64 {
    assert!(l >= 1, "need at least one sketch");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let e0 = per_sketch_epsilon(p);
    let l = f64::from(l);
    e0 * (2.0 * l * (1.0 / delta).ln()).sqrt() + l * e0 * (e0.exp() - 1.0)
}

/// Basic-composition total ε after `l` sketches (Corollary 3.4, in
/// log form): `l·ε₀`, holding deterministically (δ = 0).
///
/// # Panics
///
/// As [`per_sketch_epsilon`].
#[must_use]
pub fn epsilon_basic(p: f64, l: u32) -> f64 {
    per_sketch_epsilon(p) * f64::from(l)
}

/// Maximum sketches affordable under basic composition at total budget
/// `eps_total` (log scale): `⌊ε/ε₀⌋`.
///
/// # Panics
///
/// Panics unless the budget is positive (and as [`per_sketch_epsilon`]).
#[must_use]
pub fn max_sketches_basic(p: f64, eps_total: f64) -> u32 {
    assert!(eps_total > 0.0, "budget must be positive");
    let l = (eps_total / per_sketch_epsilon(p)).floor();
    if l >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        l as u32
    }
}

/// Maximum sketches affordable under advanced composition at total budget
/// `eps_total` with failure probability `δ`.
///
/// Solved exactly by monotonicity of [`epsilon_advanced`] in `l`
/// (binary search).
///
/// # Panics
///
/// Panics unless the budget is positive and `0 < δ < 1`.
#[must_use]
pub fn max_sketches_advanced(p: f64, eps_total: f64, delta: f64) -> u32 {
    assert!(eps_total > 0.0, "budget must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    if epsilon_advanced(p, 1, delta) > eps_total {
        return 0;
    }
    let (mut lo, mut hi) = (1u32, 2u32);
    // Exponential search for an upper bracket.
    while epsilon_advanced(p, hi, delta) <= eps_total {
        lo = hi;
        match hi.checked_mul(2) {
            Some(next) => hi = next,
            None => return u32::MAX,
        }
    }
    // Invariant: feasible(lo), infeasible(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if epsilon_advanced(p, mid, delta) <= eps_total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sketch_epsilon_matches_lemma() {
        // p = 0.25: ratio 81, ε₀ = ln 81.
        assert!((per_sketch_epsilon(0.25) - 81f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn advanced_beats_basic_for_many_sketches() {
        // Near p = 1/2 the sqrt term dominates: ε_adv(l) << ε_basic(l).
        let p = 0.499;
        let delta = 1e-9;
        let l = 10_000;
        assert!(epsilon_advanced(p, l, delta) < epsilon_basic(p, l) / 5.0);
    }

    #[test]
    fn basic_beats_advanced_for_few_sketches() {
        // For a single sketch the sqrt overhead makes advanced worse.
        let p = 0.45;
        assert!(epsilon_advanced(p, 1, 1e-6) > epsilon_basic(p, 1));
    }

    #[test]
    fn quadratic_gain_in_the_small_epsilon0_regime() {
        // The paper's claim: quadratically more sketches. As p → 1/2 at
        // fixed (ε, δ), advanced/basic sketch counts diverge like 1/ε₀.
        let eps = 1.0;
        let delta = 1e-9;
        let gain = |p: f64| {
            f64::from(max_sketches_advanced(p, eps, delta))
                / f64::from(max_sketches_basic(p, eps).max(1))
        };
        let g1 = gain(0.495);
        let g2 = gain(0.4995);
        assert!(g2 > 5.0 * g1, "gain should grow ~1/eps0: {g1} -> {g2}");
        // And the absolute counts witness the quadratic law: basic scales
        // ~10x per 10x smaller ε₀, advanced ~100x.
        let b1 = max_sketches_basic(0.495, eps);
        let b2 = max_sketches_basic(0.4995, eps);
        let a1 = max_sketches_advanced(0.495, eps, delta);
        let a2 = max_sketches_advanced(0.4995, eps, delta);
        let basic_scale = f64::from(b2) / f64::from(b1);
        let adv_scale = f64::from(a2) / f64::from(a1);
        assert!(
            (basic_scale - 10.0).abs() < 1.5,
            "basic scale {basic_scale}"
        );
        assert!(
            adv_scale > 50.0,
            "advanced scale {adv_scale} should be ~100"
        );
    }

    #[test]
    fn max_sketches_is_exact_boundary() {
        let (p, eps, delta) = (0.49, 2.0, 1e-6);
        let l = max_sketches_advanced(p, eps, delta);
        assert!(l >= 1);
        assert!(epsilon_advanced(p, l, delta) <= eps);
        assert!(epsilon_advanced(p, l + 1, delta) > eps);
        let lb = max_sketches_basic(p, eps);
        assert!(epsilon_basic(p, lb) <= eps);
        assert!(epsilon_basic(p, lb + 1) > eps);
    }

    #[test]
    fn zero_when_even_one_sketch_is_too_expensive() {
        assert_eq!(max_sketches_advanced(0.1, 0.01, 1e-6), 0);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn rejects_bad_delta() {
        let _ = epsilon_advanced(0.4, 2, 0.0);
    }
}
