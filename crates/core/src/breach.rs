//! Appendix C — comparing privacy definitions, made executable.
//!
//! The paper relates its ε-privacy (γ-amplification with `γ = 1 + ε`) to
//! the `ρ₁-to-ρ₂ privacy breach` definition of Evfimievski et al.: a
//! breach occurs when some predicate's prior probability is at most `ρ₁`
//! while its posterior given the sanitized output is at least `ρ₂`.
//! "It can be shown that ε-privacy implies ρ₁-to-ρ₂ privacy, but not vice
//! versa" — and the appendix's HIV example shows why the ρ-style
//! definition is weaker: a prior of 0.001% jumping to 49% is not a
//! (50%-threshold) breach even though "the attacker learned an enormous
//! amount".
//!
//! This module provides the Bayesian bookkeeping behind those statements:
//! posterior bounds under a likelihood-ratio cap, breach predicates, and
//! the implication checks, all unit-tested against the appendix's numbers.

/// The largest posterior an attacker can reach on a predicate with prior
/// `prior`, when every observation's likelihood ratio is bounded by
/// `gamma ≥ 1` (Bayes on the odds: posterior odds ≤ γ · prior odds).
///
/// # Panics
///
/// Panics unless `0 ≤ prior ≤ 1` and `gamma ≥ 1`.
#[must_use]
pub fn max_posterior(prior: f64, gamma: f64) -> f64 {
    assert!((0.0..=1.0).contains(&prior), "prior must be a probability");
    assert!(gamma >= 1.0, "likelihood-ratio bound must be >= 1");
    let odds = prior / (1.0 - prior);
    let post_odds = gamma * odds;
    post_odds / (1.0 + post_odds)
}

/// The smallest posterior reachable (adverse evidence), symmetric bound.
///
/// # Panics
///
/// As [`max_posterior`].
#[must_use]
pub fn min_posterior(prior: f64, gamma: f64) -> f64 {
    assert!((0.0..=1.0).contains(&prior), "prior must be a probability");
    assert!(gamma >= 1.0, "likelihood-ratio bound must be >= 1");
    let odds = prior / (1.0 - prior);
    let post_odds = odds / gamma;
    post_odds / (1.0 + post_odds)
}

/// Whether a `ρ₁-to-ρ₂` breach is *possible* under a likelihood-ratio cap
/// `gamma`: is there a prior `≤ ρ₁` whose capped posterior reaches `ρ₂`?
///
/// Since [`max_posterior`] is increasing in the prior, the worst case is
/// prior = ρ₁ exactly.
///
/// # Panics
///
/// Panics unless `0 < ρ₁ ≤ ρ₂ < 1`.
#[must_use]
pub fn breach_possible(gamma: f64, rho1: f64, rho2: f64) -> bool {
    assert!(
        rho1 > 0.0 && rho1 <= rho2 && rho2 < 1.0,
        "need 0 < rho1 <= rho2 < 1"
    );
    max_posterior(rho1, gamma) >= rho2
}

/// The paper's implication, constructive form: the largest ε such that
/// ε-privacy (γ = 1 + ε) still rules out every ρ₁-to-ρ₂ breach.
///
/// From `γ·ρ₁/(1−ρ₁) < ρ₂/(1−ρ₂)`:
/// `ε < ρ₂(1−ρ₁)/(ρ₁(1−ρ₂)) − 1`.
///
/// # Panics
///
/// As [`breach_possible`].
#[must_use]
pub fn max_epsilon_preventing_breach(rho1: f64, rho2: f64) -> f64 {
    assert!(
        rho1 > 0.0 && rho1 <= rho2 && rho2 < 1.0,
        "need 0 < rho1 <= rho2 < 1"
    );
    rho2 * (1.0 - rho1) / (rho1 * (1.0 - rho2)) - 1.0
}

/// A recorded prior→posterior movement, for auditing experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefShift {
    /// The attacker's prior on the predicate.
    pub prior: f64,
    /// The attacker's posterior after the observation.
    pub posterior: f64,
}

impl BeliefShift {
    /// Whether this shift constitutes a `ρ₁-to-ρ₂` breach.
    #[must_use]
    pub fn is_breach(&self, rho1: f64, rho2: f64) -> bool {
        self.prior <= rho1 && self.posterior >= rho2
    }

    /// The multiplicative change of the posterior odds against the prior
    /// odds — the quantity ε-privacy bounds and ρ-style definitions do
    /// not. (This is the appendix's complaint about the HIV example.)
    #[must_use]
    pub fn odds_ratio(&self) -> f64 {
        let prior_odds = self.prior / (1.0 - self.prior);
        let post_odds = self.posterior / (1.0 - self.posterior);
        post_odds / prior_odds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::privacy_ratio_bound;

    #[test]
    fn posterior_bounds_are_consistent() {
        let prior = 0.2;
        let gamma = 3.0;
        let hi = max_posterior(prior, gamma);
        let lo = min_posterior(prior, gamma);
        assert!(lo <= prior && prior <= hi);
        // γ = 1 leaves the prior unmoved.
        assert!((max_posterior(prior, 1.0) - prior).abs() < 1e-12);
        assert!((min_posterior(prior, 1.0) - prior).abs() < 1e-12);
        // Bayes check: odds triple exactly.
        assert!((hi / (1.0 - hi) - 3.0 * prior / (1.0 - prior)).abs() < 1e-12);
    }

    #[test]
    fn appendix_c_hiv_example() {
        // Prior 0.001% jumping to 49% is NOT a breach at ρ₂ = 50% …
        let shift = BeliefShift {
            prior: 1e-5,
            posterior: 0.49,
        };
        assert!(!shift.is_breach(0.1, 0.5));
        // … even though the attacker learned an enormous amount:
        assert!(shift.odds_ratio() > 90_000.0);
        // ε-privacy would have required a gigantic γ to allow this jump —
        // i.e. ε-privacy at any sane ε rules it out.
        let needed_gamma = shift.odds_ratio();
        assert!(privacy_ratio_bound(0.45) < needed_gamma / 1e4);
    }

    #[test]
    fn eps_privacy_implies_rho_privacy_but_not_conversely() {
        let (rho1, rho2) = (0.1, 0.9);
        let eps_cap = max_epsilon_preventing_breach(rho1, rho2);
        // A sketch at p = 0.45 has γ ≈ 2.23: no 10%→90% breach possible.
        let gamma = privacy_ratio_bound(0.45);
        assert!(gamma - 1.0 < eps_cap);
        assert!(!breach_possible(gamma, rho1, rho2));
        // Converse fails: a mechanism that never breaches 10%→90% can
        // still have unbounded γ on small priors — witness a γ of 80,
        // below the breach threshold (81 - 1 = 80 = eps_cap), which at a
        // prior of 10⁻⁵ multiplies the odds 80-fold.
        let big_gamma = 1.0 + eps_cap - 1e-9;
        assert!(!breach_possible(big_gamma, rho1, rho2));
        let shift = max_posterior(1e-5, big_gamma);
        assert!(shift > 7e-4, "odds moved ~80x despite no rho-breach");
    }

    #[test]
    fn breach_threshold_is_sharp() {
        let (rho1, rho2) = (0.25, 0.75);
        let eps_cap = max_epsilon_preventing_breach(rho1, rho2);
        // Just below the cap: safe. Just above: breachable.
        assert!(!breach_possible(1.0 + eps_cap * 0.999, rho1, rho2));
        assert!(breach_possible(1.0 + eps_cap * 1.001, rho1, rho2));
        // Hand value: ρ₂(1−ρ₁)/(ρ₁(1−ρ₂)) = 9 ⇒ ε_cap = 8.
        assert!((eps_cap - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "likelihood-ratio bound")]
    fn gamma_below_one_rejected() {
        let _ = max_posterior(0.5, 0.5);
    }
}
