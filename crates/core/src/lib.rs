//! # psketch-core — Privacy via Pseudorandom Sketches
//!
//! A faithful, production-quality implementation of the mechanism of
//! *Privacy via Pseudorandom Sketches* (Nina Mishra & Mark Sandler, PODS
//! 2006): users publish tiny pseudorandom **sketches** of subsets of their
//! private bit-vector data; the sketches provably leak almost nothing about
//! any individual (ε-privacy against computationally unbounded attackers
//! with arbitrary partial knowledge), yet aggregated across users they
//! answer arbitrary **conjunctive queries** — over negated and unnegated
//! attributes alike — with error independent of the query width.
//!
//! ## The pipeline
//!
//! ```
//! use psketch_core::{
//!     BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile,
//!     SketchDb, SketchParams, Sketcher, UserId,
//! };
//! use psketch_prf::{GlobalKey, Prg};
//! use rand::SeedableRng;
//!
//! // Database-wide public parameters.
//! let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(1)).unwrap();
//!
//! // Users sketch a subset of their attributes with private randomness.
//! let sketcher = Sketcher::new(params);
//! let subset = BitSubset::range(0, 3);
//! let db = SketchDb::new();
//! let mut rng = Prg::seed_from_u64(7);
//! for i in 0..2000u64 {
//!     let profile = Profile::from_bits(&[i % 2 == 0, true, false]);
//!     let sketch = sketcher.sketch(UserId(i), &profile, &subset, &mut rng).unwrap();
//!     db.insert(subset.clone(), UserId(i), sketch);
//! }
//!
//! // The analyst estimates any conjunction over the sketched subset.
//! let estimator = ConjunctiveEstimator::new(params);
//! let query = ConjunctiveQuery::new(
//!     subset,
//!     BitString::from_bits(&[true, true, false]),
//! ).unwrap();
//! let estimate = estimator.estimate(&db, &query).unwrap();
//! assert!((estimate.fraction - 0.5).abs() < 0.1);
//! ```
//!
//! ## Module map
//!
//! | module | paper source | contents |
//! |---|---|---|
//! | [`profile`] | §2 | profiles, bit strings, attribute subsets |
//! | [`params`] | §3 | validated parameters, error type |
//! | [`hfun`] | §3 | the public `p`-biased function `H(id, B, v, s)` |
//! | [`sketcher`] | Algorithm 1 | the sketching algorithm |
//! | [`database`] | §4 | the analyst's sketch collection |
//! | [`estimator`] | Algorithm 2 | conjunctive query answering |
//! | [`theory`] | Lemmas 3.1/3.3/4.1, Cor 3.4 | all bounds as functions |
//! | [`accountant`] | Cor 3.4 | multi-sketch privacy budgeting |
//! | [`exact`] | Lemma 3.3 proof | exact publish probabilities (`Z^(q)`) |
//! | [`combine`] | Appendix F | sketch combining via the matrix `V` |
//! | [`codec`] | §1 size claim | bit-packed wire format for sketches |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod breach;
pub mod codec;
pub mod combine;
pub mod composition;
pub mod database;
pub mod estimator;
pub mod exact;
pub mod fields;
pub mod funcsketch;
pub mod hfun;
pub mod params;
pub mod profile;
pub mod sketcher;
pub mod theory;

pub use accountant::PrivacyAccountant;
pub use breach::{breach_possible, max_epsilon_preventing_breach, max_posterior, BeliefShift};
pub use combine::{
    recover_from_bits, transition_condition_number, transition_matrix, CombinedEstimate,
    CombinedEstimator,
};
pub use composition::{epsilon_advanced, epsilon_basic, max_sketches_advanced, max_sketches_basic};
pub use database::{SketchDb, SketchRecord};
pub use estimator::{ConjunctiveEstimator, ConjunctiveQuery, Estimate};
pub use exact::{max_privacy_ratio, max_privacy_ratio_for, outcome_probs, OutcomeProbs};
pub use fields::IntField;
pub use funcsketch::{FunctionEstimator, FunctionId, FunctionRecord, FunctionSketcher};
pub use hfun::HFunction;
pub use params::{Error, SketchParams, MAX_SKETCH_BITS};
pub use profile::{BitString, BitSubset, Profile, SubsetError, UserId};
pub use sketcher::{Sketch, SketchRun, Sketcher};

// The PRF lane-width knob, re-exported so the server/cluster layers (and
// their CLIs) can configure scan vectorization without depending on
// psketch-prf directly. Every width computes bit-identical estimates;
// see `docs/prf-lanes.md`.
pub use psketch_prf::lanes::{
    lane_width, probe_lane_width, set_lane_width, LaneWidthError, SUPPORTED_LANE_WIDTHS,
};
