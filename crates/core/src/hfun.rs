//! Evaluation of the paper's public function `H(id, B, v, s)`.
//!
//! `H` is the database-wide pseudorandom `p`-biased function of §3. Both
//! sides of the protocol evaluate it: the *user* while running Algorithm 1
//! (on their true value `d_B`), and the *analyst* while running Algorithm 2
//! (on the queried value `v`). The two sides must agree bit-for-bit, so the
//! canonical input encoding lives here, in one place.

use crate::params::SketchParams;
use crate::profile::{BitString, BitSubset, UserId};
use psketch_prf::{AnyPrf, Bias, InputEncoder, Prf, PrfPrefix};

/// Domain-separation tag for `H` inputs (any other PRF use in the
/// workspace must pick a different tag).
const DOMAIN_H: u8 = 0x01;

/// A cached, keyed evaluator for `H`.
///
/// Construction instantiates the PRF once; evaluation is allocation-light
/// (one buffer per call) and deterministic.
#[derive(Debug, Clone, Copy)]
pub struct HFunction {
    prf: AnyPrf,
    bias: psketch_prf::Bias,
}

impl HFunction {
    /// Instantiates `H` from sketch parameters.
    #[must_use]
    pub fn new(params: &SketchParams) -> Self {
        Self {
            prf: AnyPrf::new(params.prf_kind(), params.global_key()),
            bias: params.bias(),
        }
    }

    /// Evaluates `H(id, B, v, s)` — true means "1".
    ///
    /// For a uniformly random tuple the result is 1 with probability `p`.
    ///
    /// The canonical byte order is `domain ‖ B ‖ id ‖ s ‖ v`: the fields
    /// shared by a whole shard scan (the subset) lead, the per-record
    /// fields follow, and the value trails so a record's absorbed state
    /// can be reused across all values of a distribution query. Encoding
    /// order is an internal detail of `H` — both protocol sides go
    /// through this module — and the framing keeps the tuple encoding
    /// injective in any order.
    #[must_use]
    pub fn eval(&self, id: UserId, subset: &BitSubset, value: &BitString, key: u64) -> bool {
        let mut enc = InputEncoder::with_domain(DOMAIN_H);
        enc.put_u32_seq(subset.positions());
        // Align the shared prefix to the PRF block so the per-record
        // suffix starts register-aligned (see `prepare`); the pad is part
        // of the canonical encoding.
        enc.pad_to(8);
        enc.put_u64(id.0);
        enc.put_u64(key);
        enc.put_bits(&value.to_bools());
        self.prf.eval_biased(enc.as_bytes(), self.bias)
    }

    /// The bias of this instance.
    #[must_use]
    pub fn bias(&self) -> psketch_prf::Bias {
        self.bias
    }

    /// Prepares a batched evaluator for a fixed subset `B` and value
    /// width (usually `subset.len()`, but function sketches pair a
    /// virtual subset with a different output width).
    ///
    /// The PRF state over the shared prefix `domain ‖ B` is computed
    /// **once**; per evaluation only the suffix `id ‖ s ‖ v` is absorbed.
    /// The byte stream equals [`HFunction::eval`]'s exactly, so prepared
    /// evaluation is bit-for-bit identical to scalar evaluation.
    #[must_use]
    pub fn prepare(&self, subset: &BitSubset, width: usize) -> PreparedH {
        let mut prefix = InputEncoder::with_domain(DOMAIN_H);
        prefix.put_u32_seq(subset.positions());
        prefix.pad_to(8);
        // Suffix template: id(8) ‖ key(8) ‖ bit-count(4) ‖ packed value.
        let mut suffix = InputEncoder::default();
        suffix.put_u64(0).put_u64(0).put_bits(&vec![false; width]);
        PreparedH {
            base: self.prf.begin_prefix(prefix.as_bytes()),
            bias: self.bias,
            suffix: suffix.finish(),
            width,
            value_bytes: width.div_ceil(8),
        }
    }

    /// Prepares a batched evaluator with the value region set to `value`.
    #[must_use]
    pub fn prepare_query(&self, subset: &BitSubset, value: &BitString) -> PreparedH {
        let mut prepared = self.prepare(subset, value.len());
        prepared.set_value(value);
        prepared
    }
}

/// A batched evaluator for `H` over a fixed subset: the PRF state after
/// the shared prefix `domain ‖ B`, plus a suffix template
/// `id ‖ s ‖ v` whose fields are spliced per evaluation.
///
/// This is the analyst's hot path (Algorithm 2 streams a shard's columns
/// through it) and the user's rejection-sampling loop (Algorithm 1
/// splices a fresh candidate key per iteration). Neither allocates,
/// re-encodes the subset, nor re-absorbs the prefix after preparation.
#[derive(Debug, Clone)]
pub struct PreparedH {
    /// PRF state absorbed over `domain ‖ B`.
    base: PrfPrefix,
    bias: Bias,
    /// Suffix template: `id(8) ‖ key(8) ‖ bit-count(4) ‖ packed value`.
    suffix: Vec<u8>,
    width: usize,
    value_bytes: usize,
}

/// Byte offsets of the spliced fields inside the suffix template.
const SUFFIX_ID_AT: usize = 0;
const SUFFIX_KEY_AT: usize = 8;
const SUFFIX_VALUE_AT: usize = 20;

impl PreparedH {
    /// The width (in bits) of the prepared value region.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Splices the queried/sketched value into the template.
    ///
    /// # Panics
    ///
    /// Panics unless `value.len()` matches the prepared width.
    pub fn set_value(&mut self, value: &BitString) {
        assert_eq!(value.len(), self.width, "value width mismatch");
        if self.width <= 64 {
            self.set_value_u64(value.to_u64());
            return;
        }
        // Wide values: pack LSB-first, exactly as `InputEncoder::put_bits`.
        let region = &mut self.suffix[SUFFIX_VALUE_AT..];
        region.fill(0);
        for (i, bit) in value.to_bools().into_iter().enumerate() {
            if bit {
                region[i / 8] |= 1 << (i % 8);
            }
        }
    }

    /// Splices a value given as its LSB-first integer encoding (the
    /// packed-bit payload of a `width`-bit value is exactly its
    /// little-endian bytes).
    ///
    /// # Panics
    ///
    /// Panics if the prepared width exceeds 64 bits (use
    /// [`PreparedH::set_value`] with a `BitString` instead) or if
    /// `value` has bits above the prepared width (such an encoding is
    /// unreachable by the scalar path, so accepting it would silently
    /// break the bit-for-bit equivalence contract).
    pub fn set_value_u64(&mut self, value: u64) {
        assert!(self.width <= 64, "integer values cap at 64 bits");
        assert!(
            self.width == 64 || value < (1u64 << self.width),
            "value {value} exceeds the prepared {}-bit width",
            self.width
        );
        self.suffix[SUFFIX_VALUE_AT..SUFFIX_VALUE_AT + self.value_bytes]
            .copy_from_slice(&value.to_le_bytes()[..self.value_bytes]);
    }

    /// Splices the user id into the template.
    pub fn set_id(&mut self, id: UserId) {
        self.suffix[SUFFIX_ID_AT..SUFFIX_ID_AT + 8].copy_from_slice(&id.0.to_le_bytes());
    }

    /// Splices the sketch key into the template.
    pub fn set_key(&mut self, key: u64) {
        self.suffix[SUFFIX_KEY_AT..SUFFIX_KEY_AT + 8].copy_from_slice(&key.to_le_bytes());
    }

    /// Splices both per-record fields.
    pub fn set_record(&mut self, id: u64, key: u64) {
        self.set_id(UserId(id));
        self.set_key(key);
    }

    /// Evaluates `H` on the current template contents.
    #[inline]
    #[must_use]
    pub fn eval(&self) -> bool {
        self.base.eval_biased(&self.suffix, self.bias)
    }

    /// Batched Algorithm 2 inner loop: counts records with
    /// `H(id, B, v, s) = 1` over aligned id/key columns, for the value
    /// currently spliced into the template. Per record this absorbs just
    /// the 16-byte `(id, key)` pair and the short value tail on top of
    /// the precomputed prefix state.
    ///
    /// # Panics
    ///
    /// Panics if the columns have different lengths.
    #[must_use]
    pub fn count_ones(&self, ids: &[u64], keys: &[u64]) -> usize {
        self.base
            .count_biased_columns(ids, keys, &self.suffix[16..], self.bias)
    }

    /// Batched distribution inner loop: for one record, tallies
    /// `H(id, B, v, s)` into `ones[v]` for every value
    /// `v ∈ [0, ones.len())`. The record's state (prefix + id + key) is
    /// absorbed once and reused across all values.
    pub fn tally_record(&mut self, id: u64, key: u64, ones: &mut [usize]) {
        self.set_record(id, key);
        let record_state = self.base.advanced_u64x2(id, key);
        let tail_bytes = 4 + self.value_bytes;
        if record_state.supports_short_tail(tail_bytes) && self.width <= 24 {
            // Register-only per value: the tail is the 4-byte bit count
            // followed by the value's little-endian bytes.
            let width_block = self.width as u64;
            record_state.eval_biased_short_tails(
                ones.len(),
                self.bias,
                tail_bytes as u32,
                |v| width_block | ((v as u64) << 32),
                |v, bit| ones[v] += usize::from(bit),
            );
        } else {
            let value_bytes = self.value_bytes;
            record_state.eval_biased_suffixes(
                ones.len(),
                self.bias,
                &mut self.suffix[16..],
                |v, tail| {
                    tail[4..4 + value_bytes]
                        .copy_from_slice(&(v as u64).to_le_bytes()[..value_bytes]);
                },
                |v, bit| ones[v] += usize::from(bit),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::{GlobalKey, PrfKind};

    fn h() -> HFunction {
        let params = SketchParams::new(0.3, 10, GlobalKey::from_seed(7), PrfKind::Sip).unwrap();
        HFunction::new(&params)
    }

    #[test]
    fn deterministic() {
        let f = h();
        let b = BitSubset::new(vec![0, 2]).unwrap();
        let v = BitString::from_bits(&[true, false]);
        assert_eq!(f.eval(UserId(1), &b, &v, 3), f.eval(UserId(1), &b, &v, 3));
    }

    #[test]
    fn distinguishes_every_argument() {
        let f = h();
        let b = BitSubset::new(vec![0, 2]).unwrap();
        let b2 = BitSubset::new(vec![0, 3]).unwrap();
        let v = BitString::from_bits(&[true, false]);
        let v2 = BitString::from_bits(&[true, true]);
        // Over many keys the functions for different (id, B, v) must differ
        // somewhere; check disagreement exists within 64 keys.
        let disagree =
            |a: &dyn Fn(u64) -> bool, b: &dyn Fn(u64) -> bool| (0..64).any(|s| a(s) != b(s));
        let base = |s: u64| f.eval(UserId(1), &b, &v, s);
        assert!(disagree(&base, &|s| f.eval(UserId(2), &b, &v, s)));
        assert!(disagree(&base, &|s| f.eval(UserId(1), &b2, &v, s)));
        assert!(disagree(&base, &|s| f.eval(UserId(1), &b, &v2, s)));
    }

    #[test]
    fn empirical_bias_matches_p() {
        let f = h();
        let b = BitSubset::single(0);
        let v = BitString::from_bits(&[true]);
        let n = 40_000u64;
        let ones = (0..n).filter(|&s| f.eval(UserId(9), &b, &v, s)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.012, "bias drift: {freq}");
    }

    #[test]
    fn prepared_matches_scalar_eval() {
        // The template-splice path must agree with the scalar encoder
        // bit-for-bit, for both PRF families and across all fields.
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let params = SketchParams::new(0.3, 10, GlobalKey::from_seed(7), kind).unwrap();
            let f = HFunction::new(&params);
            let b = BitSubset::new(vec![0, 2, 5]).unwrap();
            let mut prepared = f.prepare(&b, 3);
            for value in 0..8u64 {
                let v = BitString::from_u64(value, 3);
                prepared.set_value(&v);
                for id in [0u64, 1, 77, u64::MAX] {
                    for key in [0u64, 5, 1023] {
                        prepared.set_record(id, key);
                        assert_eq!(
                            prepared.eval(),
                            f.eval(UserId(id), &b, &v, key),
                            "{kind:?} diverged at value={value} id={id} key={key}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_handles_wide_values() {
        // Widths beyond 64 bits take the general bit-packing path.
        let f = h();
        let b = BitSubset::range(0, 70);
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let v = BitString::from_bits(&bits);
        let mut prepared = f.prepare(&b, 70);
        prepared.set_value(&v);
        prepared.set_record(4, 9);
        assert_eq!(prepared.eval(), f.eval(UserId(4), &b, &v, 9));
    }

    #[test]
    fn count_ones_matches_scalar_count() {
        let f = h();
        let b = BitSubset::new(vec![1, 3]).unwrap();
        let v = BitString::from_bits(&[true, false]);
        let ids: Vec<u64> = (0..500).collect();
        let keys: Vec<u64> = (0..500).map(|i| (i * 7) % 1024).collect();
        let prepared = f.prepare_query(&b, &v);
        let batched = prepared.count_ones(&ids, &keys);
        let scalar = ids
            .iter()
            .zip(&keys)
            .filter(|&(&id, &key)| f.eval(UserId(id), &b, &v, key))
            .count();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn tally_record_matches_per_value_evals() {
        let f = h();
        let b = BitSubset::new(vec![0, 1, 4]).unwrap();
        let mut prepared = f.prepare(&b, 3);
        let mut ones = vec![0usize; 8];
        for (id, key) in [(3u64, 5u64), (8, 0), (100, 1023)] {
            prepared.tally_record(id, key, &mut ones);
        }
        for value in 0..8u64 {
            let v = BitString::from_u64(value, 3);
            let expected = [(3u64, 5u64), (8, 0), (100, 1023)]
                .iter()
                .filter(|&&(id, key)| f.eval(UserId(id), &b, &v, key))
                .count();
            assert_eq!(ones[value as usize], expected, "value {value}");
        }
    }

    #[test]
    fn both_prf_families_work() {
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let params = SketchParams::new(0.4, 8, GlobalKey::from_seed(3), kind).unwrap();
            let f = HFunction::new(&params);
            let b = BitSubset::single(1);
            let v = BitString::from_bits(&[false]);
            // Just determinism + plausibility.
            assert_eq!(f.eval(UserId(5), &b, &v, 0), f.eval(UserId(5), &b, &v, 0));
        }
    }
}
