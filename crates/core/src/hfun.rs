//! Evaluation of the paper's public function `H(id, B, v, s)`.
//!
//! `H` is the database-wide pseudorandom `p`-biased function of §3. Both
//! sides of the protocol evaluate it: the *user* while running Algorithm 1
//! (on their true value `d_B`), and the *analyst* while running Algorithm 2
//! (on the queried value `v`). The two sides must agree bit-for-bit, so the
//! canonical input encoding lives here, in one place.

use crate::params::SketchParams;
use crate::profile::{BitString, BitSubset, UserId};
use psketch_prf::{AnyPrf, InputEncoder, Prf};

/// Domain-separation tag for `H` inputs (any other PRF use in the
/// workspace must pick a different tag).
const DOMAIN_H: u8 = 0x01;

/// A cached, keyed evaluator for `H`.
///
/// Construction instantiates the PRF once; evaluation is allocation-light
/// (one buffer per call) and deterministic.
#[derive(Debug, Clone, Copy)]
pub struct HFunction {
    prf: AnyPrf,
    bias: psketch_prf::Bias,
}

impl HFunction {
    /// Instantiates `H` from sketch parameters.
    #[must_use]
    pub fn new(params: &SketchParams) -> Self {
        Self {
            prf: AnyPrf::new(params.prf_kind(), params.global_key()),
            bias: params.bias(),
        }
    }

    /// Evaluates `H(id, B, v, s)` — true means "1".
    ///
    /// For a uniformly random tuple the result is 1 with probability `p`.
    #[must_use]
    pub fn eval(&self, id: UserId, subset: &BitSubset, value: &BitString, key: u64) -> bool {
        let mut enc = InputEncoder::with_domain(DOMAIN_H);
        enc.put_u64(id.0);
        enc.put_u32_seq(subset.positions());
        enc.put_bits(&value.to_bools());
        enc.put_u64(key);
        self.prf.eval_biased(enc.as_bytes(), self.bias)
    }

    /// The bias of this instance.
    #[must_use]
    pub fn bias(&self) -> psketch_prf::Bias {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::{GlobalKey, PrfKind};

    fn h() -> HFunction {
        let params =
            SketchParams::new(0.3, 10, GlobalKey::from_seed(7), PrfKind::Sip).unwrap();
        HFunction::new(&params)
    }

    #[test]
    fn deterministic() {
        let f = h();
        let b = BitSubset::new(vec![0, 2]).unwrap();
        let v = BitString::from_bits(&[true, false]);
        assert_eq!(f.eval(UserId(1), &b, &v, 3), f.eval(UserId(1), &b, &v, 3));
    }

    #[test]
    fn distinguishes_every_argument() {
        let f = h();
        let b = BitSubset::new(vec![0, 2]).unwrap();
        let b2 = BitSubset::new(vec![0, 3]).unwrap();
        let v = BitString::from_bits(&[true, false]);
        let v2 = BitString::from_bits(&[true, true]);
        // Over many keys the functions for different (id, B, v) must differ
        // somewhere; check disagreement exists within 64 keys.
        let disagree = |a: &dyn Fn(u64) -> bool, b: &dyn Fn(u64) -> bool| {
            (0..64).any(|s| a(s) != b(s))
        };
        let base = |s: u64| f.eval(UserId(1), &b, &v, s);
        assert!(disagree(&base, &|s| f.eval(UserId(2), &b, &v, s)));
        assert!(disagree(&base, &|s| f.eval(UserId(1), &b2, &v, s)));
        assert!(disagree(&base, &|s| f.eval(UserId(1), &b, &v2, s)));
    }

    #[test]
    fn empirical_bias_matches_p() {
        let f = h();
        let b = BitSubset::single(0);
        let v = BitString::from_bits(&[true]);
        let n = 40_000u64;
        let ones = (0..n).filter(|&s| f.eval(UserId(9), &b, &v, s)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.012, "bias drift: {freq}");
    }

    #[test]
    fn both_prf_families_work() {
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let params = SketchParams::new(0.4, 8, GlobalKey::from_seed(3), kind).unwrap();
            let f = HFunction::new(&params);
            let b = BitSubset::single(1);
            let v = BitString::from_bits(&[false]);
            // Just determinism + plausibility.
            assert_eq!(f.eval(UserId(5), &b, &v, 0), f.eval(UserId(5), &b, &v, 0));
        }
    }
}
