//! User profiles, identifiers, bit strings and attribute subsets.
//!
//! The paper's data model (§2): each user holds private data `d ∈ {0,1}^q`
//! (the *profile*) plus a unique public identifier `id` that carries no
//! private information. Sketches describe `d_B` — the substring of `d`
//! induced by a subset of attribute positions `B ⊆ [1..q]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A user's unique public identifier.
///
/// The paper: "each user holds a unique public identifier id — which does
/// not contain any private information (for example it could be a timestamp
/// of user registration in the system)".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

/// A packed bit string: profiles, projected values, and query values.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct BitString {
    /// Packed bits, LSB-first within each word.
    words: Vec<u64>,
    /// Number of valid bits.
    len: usize,
}

impl BitString {
    /// Creates an all-zero bit string of length `len`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit string from a slice of bools.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut s = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            s.set(i, b);
        }
        s
    }

    /// Creates a `len`-bit string from the low bits of `value` (LSB = bit 0).
    ///
    /// Used for integer attributes stored in binary inside a profile.
    #[must_use]
    pub fn from_u64(value: u64, len: usize) -> Self {
        let mut s = Self::zeros(len);
        for i in 0..len.min(64) {
            s.set(i, (value >> i) & 1 == 1);
        }
        s
    }

    /// Number of bits.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of one bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Collects into a `Vec<bool>` (for PRF input encoding and tests).
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Interprets the first `min(len, 64)` bits as an LSB-first integer.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        let mut v = self.words.first().copied().unwrap_or(0);
        if self.len < 64 {
            v &= (1u64 << self.len) - 1;
        }
        v
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(")?;
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, ")")
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bits(&bits)
    }
}

/// A user's private profile: `d ∈ {0,1}^q`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Profile {
    bits: BitString,
}

impl Profile {
    /// An all-zero profile over `q` attributes.
    #[must_use]
    pub fn zeros(q: usize) -> Self {
        Self {
            bits: BitString::zeros(q),
        }
    }

    /// Builds a profile from bools.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        Self {
            bits: BitString::from_bits(bits),
        }
    }

    /// Builds a profile from a bit string.
    #[must_use]
    pub fn from_bitstring(bits: BitString) -> Self {
        Self { bits }
    }

    /// Number of attributes `q`.
    #[must_use]
    pub fn num_attributes(&self) -> usize {
        self.bits.len()
    }

    /// Reads attribute `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ q`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Writes attribute `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ q`.
    pub fn set(&mut self, i: usize, value: bool) {
        self.bits.set(i, value);
    }

    /// The underlying bit string.
    #[must_use]
    pub fn bits(&self) -> &BitString {
        &self.bits
    }

    /// Projects the profile onto a subset: the paper's `d_B`.
    ///
    /// Bit `j` of the result is the profile bit at `subset.positions()[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the subset references positions `≥ q`.
    #[must_use]
    pub fn project(&self, subset: &BitSubset) -> BitString {
        subset
            .positions()
            .iter()
            .map(|&pos| self.bits.get(pos as usize))
            .collect()
    }

    /// Whether the profile satisfies the conjunctive constraint
    /// `d_B = value` (the paper's `I(B, v)` membership predicate).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or positions are out of range.
    #[must_use]
    pub fn satisfies(&self, subset: &BitSubset, value: &BitString) -> bool {
        assert_eq!(
            subset.len(),
            value.len(),
            "value width {} does not match subset width {}",
            value.len(),
            subset.len()
        );
        subset
            .positions()
            .iter()
            .enumerate()
            .all(|(j, &pos)| self.bits.get(pos as usize) == value.get(j))
    }
}

impl fmt::Debug for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Profile{:?}", self.bits)
    }
}

/// A subset of attribute positions `B ⊆ [0..q)`, kept sorted and unique.
///
/// Sorted canonical order makes subsets hashable database keys and makes
/// the PRF input encoding of `B` canonical (the same set always encodes to
/// the same bytes, as the paper's `H(id, B, ·, ·)` requires).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitSubset {
    positions: Vec<u32>,
}

/// Errors from subset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubsetError {
    /// The subset contains no positions.
    Empty,
    /// A position appears more than once.
    Duplicate {
        /// The repeated position.
        position: u32,
    },
}

impl fmt::Display for SubsetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "attribute subset must be non-empty"),
            Self::Duplicate { position } => {
                write!(f, "attribute position {position} appears more than once")
            }
        }
    }
}

impl std::error::Error for SubsetError {}

impl BitSubset {
    /// Builds a subset from positions (any order; sorted internally).
    ///
    /// # Errors
    ///
    /// * [`SubsetError::Empty`] for an empty position list;
    /// * [`SubsetError::Duplicate`] if a position repeats.
    pub fn new(mut positions: Vec<u32>) -> Result<Self, SubsetError> {
        if positions.is_empty() {
            return Err(SubsetError::Empty);
        }
        positions.sort_unstable();
        if let Some(w) = positions.windows(2).find(|w| w[0] == w[1]) {
            return Err(SubsetError::Duplicate { position: w[0] });
        }
        Ok(Self { positions })
    }

    /// A single-attribute subset.
    #[must_use]
    pub fn single(position: u32) -> Self {
        Self {
            positions: vec![position],
        }
    }

    /// A contiguous range of positions `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn range(start: u32, len: u32) -> Self {
        assert!(len > 0, "range subset must be non-empty");
        Self {
            positions: (start..start + len).collect(),
        }
    }

    /// The sorted positions.
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of attributes in the subset (the conjunction width `k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the subset is empty (never true for constructed values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Whether `other` and `self` share any position.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        // Both sorted: linear merge scan.
        let (mut i, mut j) = (0, 0);
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The union of two subsets.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut positions: Vec<u32> = self
            .positions
            .iter()
            .chain(other.positions.iter())
            .copied()
            .collect();
        positions.sort_unstable();
        positions.dedup();
        Self { positions }
    }

    /// Largest referenced position (subsets are non-empty by construction).
    #[must_use]
    pub fn max_position(&self) -> u32 {
        *self.positions.last().expect("subsets are non-empty")
    }
}

impl fmt::Debug for BitSubset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSubset{:?}", self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstring_roundtrip_bools() {
        let bits = [true, false, true, true, false];
        let s = BitString::from_bits(&bits);
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_bools(), bits);
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn bitstring_crosses_word_boundary() {
        let mut s = BitString::zeros(130);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(129, true);
        assert_eq!(s.count_ones(), 4);
        assert!(s.get(63) && s.get(64) && s.get(129));
        assert!(!s.get(1));
    }

    #[test]
    fn bitstring_from_u64_lsb_first() {
        let s = BitString::from_u64(0b1011, 4);
        assert_eq!(s.to_bools(), [true, true, false, true]);
        assert_eq!(s.to_u64(), 0b1011);
    }

    #[test]
    fn bitstring_to_u64_masks_to_len() {
        let s = BitString::from_u64(0xFF, 3);
        assert_eq!(s.to_u64(), 0b111);
    }

    #[test]
    fn bitstring_flip() {
        let mut s = BitString::zeros(2);
        assert!(s.flip(1));
        assert!(!s.flip(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitstring_get_out_of_bounds() {
        let s = BitString::zeros(3);
        let _ = s.get(3);
    }

    #[test]
    fn subset_sorts_and_rejects_duplicates() {
        let s = BitSubset::new(vec![5, 1, 3]).unwrap();
        assert_eq!(s.positions(), &[1, 3, 5]);
        assert_eq!(
            BitSubset::new(vec![2, 2]).unwrap_err(),
            SubsetError::Duplicate { position: 2 }
        );
        assert_eq!(BitSubset::new(vec![]).unwrap_err(), SubsetError::Empty);
    }

    #[test]
    fn subset_range_and_single() {
        assert_eq!(BitSubset::range(4, 3).positions(), &[4, 5, 6]);
        assert_eq!(BitSubset::single(9).positions(), &[9]);
    }

    #[test]
    fn subset_intersects() {
        let a = BitSubset::new(vec![1, 4, 7]).unwrap();
        let b = BitSubset::new(vec![2, 4]).unwrap();
        let c = BitSubset::new(vec![0, 3]).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn subset_union_dedups() {
        let a = BitSubset::new(vec![1, 3]).unwrap();
        let b = BitSubset::new(vec![3, 5]).unwrap();
        assert_eq!(a.union(&b).positions(), &[1, 3, 5]);
    }

    #[test]
    fn profile_projection_follows_subset_order() {
        let profile = Profile::from_bits(&[true, false, false, true, true]);
        let subset = BitSubset::new(vec![4, 0, 2]).unwrap(); // sorted: 0,2,4
        let proj = profile.project(&subset);
        assert_eq!(proj.to_bools(), [true, false, true]);
    }

    #[test]
    fn profile_satisfies_matches_projection() {
        let profile = Profile::from_bits(&[true, false, true]);
        let subset = BitSubset::new(vec![0, 2]).unwrap();
        let good = BitString::from_bits(&[true, true]);
        let bad = BitString::from_bits(&[true, false]);
        assert!(profile.satisfies(&subset, &good));
        assert!(!profile.satisfies(&subset, &bad));
        assert_eq!(profile.project(&subset), good);
    }

    #[test]
    #[should_panic(expected = "does not match subset width")]
    fn satisfies_rejects_width_mismatch() {
        let profile = Profile::from_bits(&[true, false]);
        let subset = BitSubset::single(0);
        let v = BitString::from_bits(&[true, false]);
        let _ = profile.satisfies(&subset, &v);
    }

    #[test]
    fn profile_mutation() {
        let mut p = Profile::zeros(4);
        p.set(2, true);
        assert!(p.get(2));
        assert_eq!(p.bits().count_ones(), 1);
        assert_eq!(p.num_attributes(), 4);
    }

    #[test]
    fn figure1_worked_example() {
        // Figure 1 of the paper: private 3-bit value '100' has indicator
        // position 4 (LSB-first reading of '100' = binary 0b001? The paper
        // writes values MSB-first; we store attribute 0 as the leftmost
        // written bit). The projection machinery must reproduce d_B = v.
        let profile = Profile::from_bits(&[true, false, false]); // '100'
        let all = BitSubset::range(0, 3);
        let v = BitString::from_bits(&[true, false, false]);
        assert!(profile.satisfies(&all, &v));
        // Exactly one of the 8 possible values matches.
        let matches = (0..8u64)
            .filter(|&x| {
                let candidate = BitString::from_u64(x, 3);
                profile.satisfies(&all, &candidate)
            })
            .count();
        assert_eq!(matches, 1);
    }
}
