//! Appendix F — combining sketches to answer queries on unions of subsets.
//!
//! Given sketches for subsets `B₁ … B_q`, each user contributes `q`
//! *perturbed virtual bits*: bit `i` is `H(id, Bᵢ, vᵢ, s_{u,i})`, which by
//! Lemma 3.2 equals the indicator `[d_{Bᵢ} = vᵢ]` flipped independently
//! with probability `p`. The count of users satisfying the conjunction on
//! `B₁ ∪ … ∪ B_q` is then recovered by inverting the bit-count transition
//! matrix `V` of equation (6): if `x_l` is the fraction of users whose true
//! virtual bits contain exactly `l` ones and `y_{l'}` the observed
//! fraction with `l'` ones, then `E[y] = V·x` and `x = V⁻¹·E[y]`.
//!
//! The same machinery doubles as the reconstruction estimator for plain
//! randomized response (each physical bit flipped with probability `p`),
//! which is how the baselines crate reuses it.

use crate::database::SketchDb;
use crate::estimator::ConjunctiveQuery;
use crate::hfun::HFunction;
use crate::params::{Error, SketchParams};
use crate::profile::UserId;
use psketch_linalg::{binomial_pmf, condition_number_1, Lu, Matrix};
use std::collections::HashMap;

/// Builds the `(k+1) × (k+1)` transition matrix `V` of equation (6).
///
/// `V[(l', l)]` is the probability that a user with `l` true ones among `k`
/// bits shows `l'` ones after each bit is independently flipped with
/// probability `flip_p`. Rather than the paper's single sum over `h`
/// (which mixes the two binomials), we compute it as the convolution
/// `Σ_h P[Bin(l, p) = h] · P[Bin(k−l, p) = l'−l+h]` — algebraically equal
/// to equation (6) and numerically stable.
///
/// # Panics
///
/// Panics unless `0 ≤ flip_p ≤ 1`.
#[must_use]
pub fn transition_matrix(k: usize, flip_p: f64) -> Matrix {
    assert!(
        (0.0..=1.0).contains(&flip_p),
        "flip probability out of range"
    );
    Matrix::from_fn(k + 1, k + 1, |l_prime, l| {
        // h = number of original ones flipped to zero.
        let mut total = 0.0;
        for h in 0..=l {
            let kept_ones = l - h;
            if l_prime < kept_ones {
                continue;
            }
            let raised = l_prime - kept_ones; // zeros flipped to one
            if raised > k - l {
                continue;
            }
            total += binomial_pmf(l as u64, h as u64, flip_p)
                * binomial_pmf((k - l) as u64, raised as u64, flip_p);
        }
        total
    })
}

/// The condition number `κ₁(V)` for conjunction width `k` at flip
/// probability `flip_p` — the quantity Appendix F reports as growing
/// exponentially in `k` with base `∝ 1/(p − 1/2)`.
#[must_use]
pub fn transition_condition_number(k: usize, flip_p: f64) -> f64 {
    condition_number_1(&transition_matrix(k, flip_p)).expect("square by construction")
}

/// The result of an Appendix F combined estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedEstimate {
    /// Recovered fractions `x₀ … x_k`: `x_l` = fraction of users whose true
    /// virtual-bit vector has exactly `l` ones.
    pub by_ones: Vec<f64>,
    /// Number of users aggregated.
    pub sample_size: usize,
}

impl CombinedEstimate {
    /// The fraction of users satisfying *all* component conjunctions
    /// (`x_k`, the paper's target).
    #[must_use]
    pub fn all_satisfied(&self) -> f64 {
        *self.by_ones.last().expect("k+1 ≥ 1 entries")
    }

    /// The fraction satisfying *none* of the component conjunctions
    /// (`x₀`); its complement estimates the disjunction, the paper's
    /// "estimate how many users satisfy a disjunction of conjunctions".
    #[must_use]
    pub fn none_satisfied(&self) -> f64 {
        self.by_ones[0]
    }

    /// The fraction satisfying at least one component (the disjunction).
    #[must_use]
    pub fn disjunction(&self) -> f64 {
        1.0 - self.none_satisfied()
    }

    /// The fraction satisfying exactly `l` components — the paper's §4.1
    /// "estimate the fraction of users that satisfy exactly l out of k
    /// bits in the query".
    ///
    /// # Panics
    ///
    /// Panics if `l > k`.
    #[must_use]
    pub fn exactly(&self, l: usize) -> f64 {
        self.by_ones[l]
    }
}

/// Recovers true bit-count fractions from perturbed per-user bit vectors.
///
/// `rows` yields one `Vec<bool>` of width `k` per user — the perturbed
/// (virtual or physical) bits. `flip_p` is the per-bit flip probability.
///
/// # Errors
///
/// * [`Error::EmptyDatabase`] when `rows` is empty;
/// * [`Error::WidthMismatch`] if a row's width differs from `k`.
///
/// # Panics
///
/// Panics if the transition matrix is numerically singular. `V` is
/// provably invertible for `flip_p ≠ 1/2`, so in practice this fires only
/// when `flip_p` is so close to 1/2 (at large `k`) that the inversion is
/// meaningless anyway; callers choosing parameters via
/// [`transition_condition_number`] will never hit it.
pub fn recover_from_bits<I>(k: usize, flip_p: f64, rows: I) -> Result<CombinedEstimate, Error>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let mut histogram = vec![0u64; k + 1];
    let mut n = 0usize;
    for row in rows {
        if row.len() != k {
            return Err(Error::WidthMismatch {
                subset: k,
                value: row.len(),
            });
        }
        let ones = row.iter().filter(|&&b| b).count();
        histogram[ones] += 1;
        n += 1;
    }
    if n == 0 {
        return Err(Error::EmptyDatabase);
    }
    let y: Vec<f64> = histogram.iter().map(|&c| c as f64 / n as f64).collect();
    let v = transition_matrix(k, flip_p);
    let lu = Lu::factorize(&v).expect("V is invertible for flip_p != 1/2");
    let x = lu.solve(&y).expect("dimensions match by construction");
    Ok(CombinedEstimate {
        by_ones: x,
        sample_size: n,
    })
}

/// The Appendix F estimator over a sketch database.
#[derive(Debug, Clone)]
pub struct CombinedEstimator {
    params: SketchParams,
    h: HFunction,
}

impl CombinedEstimator {
    /// Builds the estimator (same parameters as the publishing sketchers).
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        let h = HFunction::new(&params);
        Self { params, h }
    }

    /// Estimates the fraction of users satisfying *every* component query
    /// simultaneously, where component `i` is a conjunctive query on its
    /// own sketched subset `Bᵢ`.
    ///
    /// Only users that published a sketch for **all** component subsets
    /// participate (the others carry no information about the union).
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownSubset`] if any component subset has no sketches;
    /// * [`Error::EmptyDatabase`] if no user covers all components.
    pub fn estimate(
        &self,
        db: &SketchDb,
        components: &[ConjunctiveQuery],
    ) -> Result<CombinedEstimate, Error> {
        assert!(!components.is_empty(), "need at least one component query");
        let k = components.len();

        // Gather per-user virtual bits; join on user id across subsets.
        let mut per_user: HashMap<UserId, Vec<Option<bool>>> = HashMap::new();
        for (i, query) in components.iter().enumerate() {
            let snapshot = db.snapshot(query.subset())?;
            let mut prepared = self.h.prepare_query(query.subset(), query.value());
            for rec in snapshot.records() {
                prepared.set_record(rec.id.0, rec.sketch.key);
                per_user.entry(rec.id).or_insert_with(|| vec![None; k])[i] = Some(prepared.eval());
            }
        }
        let rows: Vec<Vec<bool>> = per_user
            .into_values()
            .filter_map(|bits| bits.into_iter().collect::<Option<Vec<bool>>>())
            .collect();
        if rows.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        recover_from_bits(k, self.params.p(), rows)
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &SketchParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BitString, BitSubset, Profile};
    use crate::sketcher::Sketcher;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    #[test]
    fn transition_matrix_columns_are_stochastic() {
        for &(k, p) in &[(1usize, 0.3), (4, 0.25), (8, 0.45), (3, 0.0), (3, 1.0)] {
            let v = transition_matrix(k, p);
            for l in 0..=k {
                let col_sum: f64 = (0..=k).map(|lp| v[(lp, l)]).sum();
                assert!(
                    (col_sum - 1.0).abs() < 1e-12,
                    "column {l} sums to {col_sum} at k={k}, p={p}"
                );
            }
        }
    }

    #[test]
    fn transition_matrix_no_flip_is_identity() {
        let v = transition_matrix(5, 0.0);
        assert!(v.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-15);
    }

    #[test]
    fn transition_matrix_full_flip_is_reversal() {
        let v = transition_matrix(3, 1.0);
        // l ones become exactly 3−l ones.
        for l in 0..=3usize {
            for lp in 0..=3usize {
                let expected = if lp == 3 - l { 1.0 } else { 0.0 };
                assert!((v[(lp, l)] - expected).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn transition_matrix_matches_paper_equation_6() {
        // Direct evaluation of eq. (6) against the convolution form.
        let (k, p) = (5usize, 0.3f64);
        let v = transition_matrix(k, p);
        for l in 0..=k {
            for lp in 0..=k {
                let mut eq6 = 0.0;
                for h in 0..=l {
                    let raised = lp as i64 - l as i64 + h as i64;
                    if raised < 0 || raised > (k - l) as i64 {
                        continue;
                    }
                    let exponent_ones = h as i32 + raised as i32;
                    let exponent_zeros = (k as i32) - exponent_ones;
                    eq6 += psketch_linalg::binomial_f64(l as u64, h as u64)
                        * psketch_linalg::binomial_f64((k - l) as u64, raised as u64)
                        * p.powi(exponent_ones)
                        * (1.0 - p).powi(exponent_zeros);
                }
                assert!(
                    (v[(lp, l)] - eq6).abs() < 1e-12,
                    "eq6 mismatch at l={l}, l'={lp}"
                );
            }
        }
    }

    #[test]
    fn condition_number_grows_with_k() {
        let p = 0.3;
        let k4 = transition_condition_number(4, p);
        let k8 = transition_condition_number(8, p);
        assert!(k8 > 4.0 * k4, "κ should grow quickly: κ(4)={k4}, κ(8)={k8}");
    }

    #[test]
    fn condition_number_explodes_near_half() {
        let k = 6;
        let far = transition_condition_number(k, 0.25);
        let near = transition_condition_number(k, 0.45);
        assert!(
            near > 10.0 * far,
            "κ(p→1/2) should blow up: {far} vs {near}"
        );
    }

    #[test]
    fn recover_from_bits_roundtrip_noiseless() {
        // flip_p tiny: observed ≈ truth; recovery must match histogram.
        let rows = vec![
            vec![true, true, false],
            vec![true, true, true],
            vec![false, false, false],
            vec![true, true, true],
        ];
        let est = recover_from_bits(3, 1e-9, rows).unwrap();
        assert!((est.all_satisfied() - 0.5).abs() < 1e-6);
        assert!((est.none_satisfied() - 0.25).abs() < 1e-6);
        assert!((est.exactly(2) - 0.25).abs() < 1e-6);
        assert!((est.disjunction() - 0.75).abs() < 1e-6);
        assert_eq!(est.sample_size, 4);
    }

    #[test]
    fn recover_from_bits_statistical() {
        // Plant x = (0.2, 0.3, 0.5) over k=2 bits, flip at p=0.2, recover.
        let p = 0.2;
        let mut rng = Prg::seed_from_u64(17);
        use rand::RngExt;
        let m = 60_000;
        let rows: Vec<Vec<bool>> = (0..m)
            .map(|i| {
                let truth: Vec<bool> = match i % 10 {
                    0 | 1 => vec![false, false],
                    2..=4 => vec![true, false],
                    _ => vec![true, true],
                };
                truth
                    .into_iter()
                    .map(|b| b ^ (rng.random::<f64>() < p))
                    .collect()
            })
            .collect();
        let est = recover_from_bits(2, p, rows).unwrap();
        assert!(
            (est.by_ones[0] - 0.2).abs() < 0.02,
            "x0 = {}",
            est.by_ones[0]
        );
        assert!(
            (est.by_ones[1] - 0.3).abs() < 0.02,
            "x1 = {}",
            est.by_ones[1]
        );
        assert!(
            (est.by_ones[2] - 0.5).abs() < 0.02,
            "x2 = {}",
            est.by_ones[2]
        );
    }

    #[test]
    fn recover_rejects_bad_width_and_empty() {
        assert!(matches!(
            recover_from_bits(2, 0.1, vec![vec![true]]),
            Err(Error::WidthMismatch { .. })
        ));
        assert!(matches!(
            recover_from_bits(2, 0.1, Vec::<Vec<bool>>::new()),
            Err(Error::EmptyDatabase)
        ));
    }

    #[test]
    fn combined_estimator_end_to_end() {
        // Two disjoint subsets; plant a joint distribution and recover the
        // conjunction frequency on the union.
        let p = 0.25;
        let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(31)).unwrap();
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        let b1 = BitSubset::range(0, 2);
        let b2 = BitSubset::range(2, 2);
        let mut rng = Prg::seed_from_u64(18);
        let m = 30_000u64;
        // 40% of users satisfy both (d = 1111); 30% only B1 (1100);
        // 30% neither (0000).
        for i in 0..m {
            let profile = match i % 10 {
                0..=3 => Profile::from_bits(&[true, true, true, true]),
                4..=6 => Profile::from_bits(&[true, true, false, false]),
                _ => Profile::from_bits(&[false, false, false, false]),
            };
            for b in [&b1, &b2] {
                let s = sketcher.sketch(UserId(i), &profile, b, &mut rng).unwrap();
                db.insert(b.clone(), UserId(i), s);
            }
        }
        let est = CombinedEstimator::new(params);
        let q1 = ConjunctiveQuery::new(b1, BitString::from_bits(&[true, true])).unwrap();
        let q2 = ConjunctiveQuery::new(b2, BitString::from_bits(&[true, true])).unwrap();
        let combined = est.estimate(&db, &[q1, q2]).unwrap();
        assert_eq!(combined.sample_size, m as usize);
        assert!(
            (combined.all_satisfied() - 0.4).abs() < 0.03,
            "conjunction on union: {} (want 0.4)",
            combined.all_satisfied()
        );
        assert!(
            (combined.disjunction() - 0.7).abs() < 0.03,
            "disjunction: {} (want 0.7)",
            combined.disjunction()
        );
    }

    #[test]
    fn combined_estimator_requires_overlapping_users() {
        let params = SketchParams::with_sip(0.3, 8, GlobalKey::from_seed(1)).unwrap();
        let db = SketchDb::new();
        let b1 = BitSubset::single(0);
        let b2 = BitSubset::single(1);
        // Disjoint user sets for the two subsets.
        db.insert(b1.clone(), UserId(1), crate::sketcher::Sketch { key: 0 });
        db.insert(b2.clone(), UserId(2), crate::sketcher::Sketch { key: 0 });
        let est = CombinedEstimator::new(params);
        let q1 = ConjunctiveQuery::new(b1, BitString::from_bits(&[true])).unwrap();
        let q2 = ConjunctiveQuery::new(b2, BitString::from_bits(&[true])).unwrap();
        assert!(matches!(
            est.estimate(&db, &[q1, q2]),
            Err(Error::EmptyDatabase)
        ));
    }
}
