//! Sketching arbitrary functions of a profile — the Conclusions extension.
//!
//! §5: "a natural generalization of sketching bit subsets is sketching
//! arbitrary functions of a user profile. The same privacy guarantees
//! apply, but the main question is whether we can significantly expand the
//! range of queries we can answer."
//!
//! This module implements that generalization. A sketched function is a
//! named, public function `f : Profile → {0,1}^w` with a finite output
//! width; the user runs Algorithm 1 on the *output value* `f(d)` with the
//! function's identifier in place of the subset `B` inside `H`. Privacy is
//! untouched — Lemma 3.3's analysis never looks at what the hashed value
//! *means*, only that the user's data selects one value out of a space —
//! and the analyst can then estimate `freq(f(d) = v)` for every `v` with
//! the usual Algorithm 2 inversion.
//!
//! Subset sketching is the special case `f = (·)_B`; the tests pin the two
//! code paths to each other.

use crate::hfun::HFunction;
use crate::params::{Error, SketchParams};
use crate::profile::{BitString, Profile, UserId};
use crate::sketcher::{Sketch, SketchRun, Sketcher};
use serde::{Deserialize, Serialize};

/// A public, named function of a profile with a `width`-bit output.
///
/// The identifier must be globally unique per database (the coordinator
/// assigns it); it plays the role the subset `B` plays in `H`'s input and
/// therefore in the independence argument across sketched objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionId {
    /// Unique identifier of the function within the database.
    pub id: u64,
    /// Output width in bits (`1 ≤ width ≤ 20` supported for full
    /// distribution queries).
    pub width: u32,
}

impl FunctionId {
    /// Creates a function identifier.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 32`.
    #[must_use]
    pub fn new(id: u64, width: u32) -> Self {
        assert!((1..=32).contains(&width), "output width must be in [1, 32]");
        Self { id, width }
    }

    /// Encodes this function as the pseudo-subset fed to `H`.
    ///
    /// Function sketches live in a separate `H`-domain from subset
    /// sketches: the positions `[2³¹ + id-low, width]` cannot collide with
    /// real attribute positions, which are bounded by `2³¹` via
    /// [`crate::params::MAX_SKETCH_BITS`]-scale profiles. Injectivity with
    /// subset sketching is additionally guarded by the width channel.
    fn domain(&self) -> crate::profile::BitSubset {
        // A two-position subset encodes (id, width) injectively and cannot
        // equal any real subset used for data because real subsets are
        // sorted sets of attribute indices < 2^31 (enforced at a higher
        // level by profile sizes).
        let hi = 0x8000_0000u32 | (self.id as u32 & 0x3FFF_FFFF);
        let lo = 0xC000_0000u32 | self.width;
        crate::profile::BitSubset::new(vec![hi, lo]).expect("two distinct positions")
    }
}

/// User-side engine for function sketches.
#[derive(Debug, Clone)]
pub struct FunctionSketcher {
    inner: Sketcher,
}

impl FunctionSketcher {
    /// Builds a function sketcher from database parameters.
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        Self {
            inner: Sketcher::new(params),
        }
    }

    /// Sketches `f(profile)` where `f` is evaluated by the caller-supplied
    /// closure (the function itself is public; the *output on this user's
    /// data* is what stays private).
    ///
    /// # Errors
    ///
    /// As [`Sketcher::sketch`].
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a value outside the declared output width.
    pub fn sketch<R: rand::Rng + ?Sized, F>(
        &self,
        id: UserId,
        profile: &Profile,
        function: FunctionId,
        f: F,
        rng: &mut R,
    ) -> Result<Sketch, Error>
    where
        F: FnOnce(&Profile) -> u64,
    {
        self.sketch_with_stats(id, profile, function, f, rng)
            .map(|run| run.sketch)
    }

    /// As [`FunctionSketcher::sketch`], with iteration statistics.
    ///
    /// # Errors
    ///
    /// As [`Sketcher::sketch`].
    pub fn sketch_with_stats<R: rand::Rng + ?Sized, F>(
        &self,
        id: UserId,
        profile: &Profile,
        function: FunctionId,
        f: F,
        rng: &mut R,
    ) -> Result<SketchRun, Error>
    where
        F: FnOnce(&Profile) -> u64,
    {
        let output = f(profile);
        assert!(
            output < (1u64 << function.width),
            "function output {output} exceeds declared width {}",
            function.width
        );
        let value = BitString::from_u64(output, function.width as usize);
        self.inner
            .sketch_value_with_stats(id, &function.domain(), &value, rng)
    }
}

/// Analyst-side estimator over function sketches.
#[derive(Debug, Clone)]
pub struct FunctionEstimator {
    params: SketchParams,
    h: HFunction,
}

/// One `(user, sketch)` record for a function sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionRecord {
    /// The publishing user.
    pub id: UserId,
    /// The published sketch.
    pub sketch: Sketch,
}

impl FunctionEstimator {
    /// Builds the estimator (same parameters as the sketchers).
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        Self {
            params,
            h: HFunction::new(&params),
        }
    }

    /// Estimates `freq(f(d) = value)` from the published records.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if no records were supplied.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the declared output width.
    pub fn estimate(
        &self,
        function: FunctionId,
        records: &[FunctionRecord],
        value: u64,
    ) -> Result<crate::estimator::Estimate, Error> {
        if records.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        assert!(value < (1u64 << function.width), "value exceeds width");
        let target = BitString::from_u64(value, function.width as usize);
        let domain = function.domain();
        let ones = records
            .iter()
            .filter(|rec| self.h.eval(rec.id, &domain, &target, rec.sketch.key))
            .count();
        let n = records.len();
        let raw = ones as f64 / n as f64;
        let p = self.params.p();
        Ok(crate::estimator::Estimate {
            fraction: (raw - p) / (1.0 - 2.0 * p),
            raw,
            sample_size: n,
            p,
        })
    }

    /// Estimates the full output distribution of `f` (`2^width` values).
    ///
    /// # Errors
    ///
    /// As [`FunctionEstimator::estimate`]. Requires `width ≤ 20`.
    pub fn estimate_distribution(
        &self,
        function: FunctionId,
        records: &[FunctionRecord],
    ) -> Result<Vec<crate::estimator::Estimate>, Error> {
        assert!(
            function.width <= 20,
            "distribution limited to 20-bit outputs"
        );
        (0..(1u64 << function.width))
            .map(|v| self.estimate(function, records, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn params() -> SketchParams {
        SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(55)).unwrap()
    }

    /// The popcount-bucket function of the tests: f(d) = min(ones(d), 3).
    fn bucket(profile: &Profile) -> u64 {
        (profile.bits().count_ones() as u64).min(3)
    }

    #[test]
    fn recovers_function_output_distribution() {
        let sketcher = FunctionSketcher::new(params());
        let estimator = FunctionEstimator::new(params());
        let function = FunctionId::new(1, 2);
        let mut rng = Prg::seed_from_u64(56);
        let m = 20_000u64;
        let mut records = Vec::new();
        let mut truth = [0u64; 4];
        for i in 0..m {
            // Profiles with 0..=4 ones in a fixed pattern.
            let ones = (i % 5) as usize;
            let mut bits = vec![false; 4];
            for b in bits.iter_mut().take(ones) {
                *b = true;
            }
            let profile = Profile::from_bits(&bits);
            truth[bucket(&profile) as usize] += 1;
            let s = sketcher
                .sketch(UserId(i), &profile, function, bucket, &mut rng)
                .unwrap();
            records.push(FunctionRecord {
                id: UserId(i),
                sketch: s,
            });
        }
        let dist = estimator.estimate_distribution(function, &records).unwrap();
        for v in 0..4usize {
            let expected = truth[v] as f64 / m as f64;
            assert!(
                (dist[v].fraction - expected).abs() < 0.03,
                "bucket {v}: {} vs {expected}",
                dist[v].fraction
            );
        }
    }

    #[test]
    fn function_sketch_reduces_to_subset_sketch_semantics() {
        // f = projection onto bits {0,2}: the estimate must match the
        // ordinary subset path statistically on the same population.
        let sketcher = FunctionSketcher::new(params());
        let subset_sketcher = Sketcher::new(params());
        let estimator = FunctionEstimator::new(params());
        let sub_estimator = crate::estimator::ConjunctiveEstimator::new(params());
        let function = FunctionId::new(9, 2);
        let subset = crate::profile::BitSubset::new(vec![0, 2]).unwrap();
        let db = crate::database::SketchDb::new();
        let mut rng = Prg::seed_from_u64(57);
        let m = 15_000u64;
        let mut records = Vec::new();
        for i in 0..m {
            let profile = Profile::from_bits(&[i % 4 == 0, true, i % 2 == 0]);
            let proj = |p: &Profile| u64::from(p.get(0)) | (u64::from(p.get(2)) << 1);
            let s = sketcher
                .sketch(UserId(i), &profile, function, proj, &mut rng)
                .unwrap();
            records.push(FunctionRecord {
                id: UserId(i),
                sketch: s,
            });
            let s2 = subset_sketcher
                .sketch(UserId(i), &profile, &subset, &mut rng)
                .unwrap();
            db.insert(subset.clone(), UserId(i), s2);
        }
        // Value (1,1) ↔ integer 3 under LSB-first packing.
        let via_function = estimator.estimate(function, &records, 3).unwrap().fraction;
        let q =
            crate::estimator::ConjunctiveQuery::new(subset, BitString::from_bits(&[true, true]))
                .unwrap();
        let via_subset = sub_estimator.estimate(&db, &q).unwrap().fraction;
        let truth = 0.25 * 0.5; // i%4==0 and i%2==0 coincide: actually i%4==0 ⊂ i%2==0
        let _ = truth;
        assert!(
            (via_function - via_subset).abs() < 0.03,
            "paths disagree: {via_function} vs {via_subset}"
        );
        // And the truth is freq(i%4==0 ∧ i%2==0) = 0.25.
        assert!((via_function - 0.25).abs() < 0.03);
    }

    #[test]
    fn distinct_functions_are_independent() {
        // Two functions with the same outputs on the same user must not
        // produce correlated H tables (different ids → different domains).
        let params = params();
        let h = HFunction::new(&params);
        let f1 = FunctionId::new(1, 2).domain();
        let f2 = FunctionId::new(2, 2).domain();
        let v = BitString::from_u64(1, 2);
        let disagreements = (0..64u64)
            .filter(|&s| h.eval(UserId(1), &f1, &v, s) != h.eval(UserId(1), &f2, &v, s))
            .count();
        assert!(disagreements > 10, "domains look correlated");
    }

    #[test]
    fn empty_records_error() {
        let estimator = FunctionEstimator::new(params());
        assert!(matches!(
            estimator.estimate(FunctionId::new(1, 1), &[], 0),
            Err(Error::EmptyDatabase)
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds declared width")]
    fn oversized_output_panics() {
        let sketcher = FunctionSketcher::new(params());
        let mut rng = Prg::seed_from_u64(58);
        let profile = Profile::zeros(2);
        let _ = sketcher.sketch(UserId(0), &profile, FunctionId::new(3, 1), |_| 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "output width must be in")]
    fn zero_width_function_rejected() {
        let _ = FunctionId::new(1, 0);
    }
}
