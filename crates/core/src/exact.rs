//! Exact publish-probability analysis — Lemma 3.3 made executable.
//!
//! The privacy proof of the paper analyzes Algorithm 1 as a function of the
//! *evaluation table* of `H`: fix a user, a subset and a key space of
//! `L = 2^ℓ` keys; a profile `d` induces the table `f(d, ·) : s ↦ {0,1}`.
//! The probability that a particular key is published depends only on
//! (a) how many keys evaluate to 1 (`q`, the proof's `Q(d)`), and
//! (b) whether the key in question evaluates to 1 — by the permutation
//! symmetry the proof calls "invariant with respect to permutations of the
//! key evaluations".
//!
//! This module computes those probabilities *exactly* (the proof's `Z^(q)`
//! quantities) so that the privacy bound can be verified without Monte
//! Carlo, for adversarial tables as well as honest ones.

use crate::params::SketchParams;

/// Exact distribution of Algorithm 1's outcome for one evaluation table.
///
/// All quantities are conditioned only on the table shape `(L, q)`:
/// `L = 2^ℓ` keys of which `q` evaluate to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeProbs {
    /// Probability a *specific* key that evaluates to 1 is published
    /// (`NaN`-free: zero when `q = 0`).
    pub publish_one_key: f64,
    /// Probability a *specific* key that evaluates to 0 is published
    /// (zero when `q = L`).
    pub publish_zero_key: f64,
    /// Probability the algorithm fails (possible only when `q = 0`).
    pub failure: f64,
}

/// Computes the exact outcome probabilities for a table with `l_keys` keys
/// of which `q_ones` evaluate to 1, with step-5 accept probability `r`.
///
/// Derivation: the candidate order is a uniform permutation. A specific
/// 1-key `s` is published iff every key drawn before it is a 0-key that the
/// accept coin rejected. With `z = L − q` zero keys,
///
/// `P₁ = Σᵢ (z)ᵢ/(L)ᵢ · 1/(L−i) · (1−r)ⁱ` for `i = 0..z`,
///
/// where `(x)ᵢ` is the falling factorial (probability the first `i` draws
/// are all zero-keys) and `1/(L−i)` the probability `s` is drawn next. A
/// specific 0-key is published iff the same prefix event happens among the
/// other `z−1` zero keys and then its own accept coin fires:
///
/// `P₀ = r · Σᵢ (z−1)ᵢ/(L)ᵢ · 1/(L−i) · (1−r)ⁱ` for `i = 0..z−1`.
///
/// The run fails iff `q = 0` and all `L` accept coins reject: `(1−r)^L`.
///
/// # Panics
///
/// Panics if `q_ones > l_keys`, `l_keys == 0`, or `r ∉ (0, 1]`.
#[must_use]
pub fn outcome_probs(l_keys: u64, q_ones: u64, r: f64) -> OutcomeProbs {
    assert!(l_keys > 0, "key space must be non-empty");
    assert!(q_ones <= l_keys, "cannot have more ones than keys");
    assert!(r > 0.0 && r <= 1.0, "accept probability r must be in (0,1]");
    let l = l_keys as f64;
    let z = l_keys - q_ones;

    // Publish probability for a 1-key (only defined when q ≥ 1).
    let publish_one_key = if q_ones == 0 {
        0.0
    } else {
        let mut sum = 0.0;
        // prefix = (z)_i / (L)_i, built incrementally.
        let mut prefix = 1.0;
        for i in 0..=z {
            sum += prefix / (l - i as f64) * (1.0 - r).powi(i as i32);
            if i < z {
                prefix *= (z - i) as f64 / (l - i as f64);
            }
        }
        sum
    };

    // Publish probability for a 0-key (only defined when z ≥ 1).
    let publish_zero_key = if z == 0 {
        0.0
    } else {
        let mut sum = 0.0;
        let mut prefix = 1.0;
        let other_zeros = z - 1;
        for i in 0..=other_zeros {
            sum += prefix / (l - i as f64) * (1.0 - r).powi(i as i32);
            if i < other_zeros {
                prefix *= (other_zeros - i) as f64 / (l - i as f64);
            }
        }
        r * sum
    };

    let failure = if q_ones == 0 {
        (1.0 - r).powi(l_keys as i32)
    } else {
        0.0
    };

    OutcomeProbs {
        publish_one_key,
        publish_zero_key,
        failure,
    }
}

/// The exact worst-case likelihood ratio over all pairs of evaluation
/// tables and all sketch values, for a key space of `l_keys` keys.
///
/// This is the quantity Lemma 3.3 bounds by `((1−p)/p)⁴`: the maximum over
/// profiles `d′, d″` (equivalently over table shapes `q′, q″` and key
/// evaluation `w′, w″ ∈ {0,1}`) of `Pr[publish s | d′]/Pr[publish s | d″]`.
/// `H` is adversarial here — any pair of tables is admissible — which is
/// the paper's "even an adversarial choice of the values of H would not
/// compromise a user's privacy".
#[must_use]
pub fn max_privacy_ratio(l_keys: u64, r: f64) -> f64 {
    let mut probs = Vec::new();
    for q in 0..=l_keys {
        let o = outcome_probs(l_keys, q, r);
        if q >= 1 {
            probs.push(o.publish_one_key);
        }
        if q < l_keys {
            probs.push(o.publish_zero_key);
        }
    }
    let max = probs.iter().copied().fold(0.0, f64::max);
    let min = probs.iter().copied().fold(f64::INFINITY, f64::min);
    max / min
}

/// Convenience: exact privacy ratio for a parameter set (uses its key
/// space size and `r = p²/(1−p)²`).
#[must_use]
pub fn max_privacy_ratio_for(params: &SketchParams) -> f64 {
    max_privacy_ratio(params.key_space(), params.accept_prob())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BitString, BitSubset, UserId};
    use crate::sketcher::Sketcher;
    use crate::theory::privacy_ratio_bound;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    #[test]
    fn total_probability_is_one() {
        // q·P₁ + z·P₀ + failure = 1 for every shape.
        for l in [1u64, 2, 8, 16, 64] {
            for q in 0..=l {
                for &r in &[0.1, 0.25, 1.0 / 9.0, 0.9] {
                    let o = outcome_probs(l, q, r);
                    let total = q as f64 * o.publish_one_key
                        + (l - q) as f64 * o.publish_zero_key
                        + o.failure;
                    assert!(
                        (total - 1.0).abs() < 1e-12,
                        "L={l} q={q} r={r}: total {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_ones_table_is_uniform() {
        // If every key evaluates to 1 the first draw is published: 1/L.
        let o = outcome_probs(8, 8, 0.25);
        assert!((o.publish_one_key - 0.125).abs() < 1e-12);
        assert_eq!(o.failure, 0.0);
    }

    #[test]
    fn proofs_z_identity_zq0_equals_zq1_plus() {
        // The proof's identity: the probability of *considering* a 0-key
        // when q ones exist equals that of considering a 1-key when q+1
        // exist. Considering a 0-key = publish₀/r; considering a 1-key =
        // publish₁.
        let l = 16;
        let r = 0.25;
        for q in 0..l {
            let zero_side = outcome_probs(l, q, r).publish_zero_key / r;
            let one_side = outcome_probs(l, q + 1, r).publish_one_key;
            assert!(
                (zero_side - one_side).abs() < 1e-12,
                "Z identity fails at q={q}"
            );
        }
    }

    #[test]
    fn monotonicity_in_q() {
        // More 1-keys ⇒ the run ends sooner ⇒ each specific 1-key is less
        // likely to be reached: Z^(q) ≥ Z^(q+1) from the proof.
        let l = 32;
        let r = 1.0 / 9.0;
        let mut prev = f64::INFINITY;
        for q in 1..=l {
            let cur = outcome_probs(l, q, r).publish_one_key;
            assert!(cur <= prev + 1e-15, "Z not monotone at q={q}");
            prev = cur;
        }
    }

    #[test]
    fn lemma_3_3_bound_holds_exactly() {
        // Exact worst-case ratio ≤ ((1−p)/p)^4 for representative params.
        for &p in &[0.2f64, 0.25, 0.3, 0.4, 0.45] {
            let r = (p / (1.0 - p)).powi(2);
            for bits in 1..=8u8 {
                let ratio = max_privacy_ratio(1 << bits, r);
                let bound = privacy_ratio_bound(p);
                assert!(
                    ratio <= bound * (1.0 + 1e-9),
                    "p={p} ℓ={bits}: exact ratio {ratio} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bound_is_not_vacuous() {
        // The exact ratio should be a significant fraction of the bound
        // (the paper's analysis is tight up to the 1/r² vs observed gap).
        let p: f64 = 0.25;
        let r = (p / (1.0 - p)).powi(2);
        let ratio = max_privacy_ratio(1 << 8, r);
        assert!(
            ratio > privacy_ratio_bound(p) / 10.0,
            "ratio {ratio} suspiciously far below the bound"
        );
        assert!(ratio > 1.0);
    }

    #[test]
    fn monte_carlo_agreement() {
        // Simulate Algorithm 1 against a *fixed synthetic table* and check
        // the empirical publish distribution matches the exact one.
        let l: u64 = 8;
        let q: u64 = 3; // keys 0,1,2 evaluate to 1
        let p: f64 = 0.3;
        let r = (p / (1.0 - p)).powi(2);
        let exact = outcome_probs(l, q, r);

        let mut rng = Prg::seed_from_u64(99);
        let trials = 200_000;
        let mut one_hits = 0u64;
        let mut zero_hits = 0u64;
        let accept = psketch_prf::Bias::from_prob(r);
        use rand::Rng;
        for _ in 0..trials {
            // Inline simulation of Algorithm 1 over the synthetic table.
            let mut remaining: Vec<u64> = (0..l).collect();
            let mut published = None;
            while !remaining.is_empty() {
                let idx = (rng.next_u64() % remaining.len() as u64) as usize;
                let key = remaining.swap_remove(idx);
                let evaluates_one = key < q;
                if evaluates_one || accept.decide(rng.next_u64()) {
                    published = Some(key);
                    break;
                }
            }
            match published {
                Some(0) => one_hits += 1,            // a specific 1-key
                Some(k) if k == q => zero_hits += 1, // a specific 0-key
                _ => {}
            }
        }
        let f_one = one_hits as f64 / trials as f64;
        let f_zero = zero_hits as f64 / trials as f64;
        assert!(
            (f_one - exact.publish_one_key).abs() < 0.005,
            "1-key: MC {f_one} vs exact {}",
            exact.publish_one_key
        );
        assert!(
            (f_zero - exact.publish_zero_key).abs() < 0.005,
            "0-key: MC {f_zero} vs exact {}",
            exact.publish_zero_key
        );
    }

    #[test]
    fn end_to_end_sketcher_ratio_respects_bound() {
        // Empirical Pr[s | d′]/Pr[s | d″] from the real sketcher stays
        // within the Lemma 3.3 bound (with sampling slack).
        let p = 0.3;
        let params = SketchParams::with_sip(p, 3, GlobalKey::from_seed(5)).unwrap();
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, 2);
        let d1 = BitString::from_bits(&[false, false]);
        let d2 = BitString::from_bits(&[true, true]);
        let id = UserId(424_242);
        let l = params.key_space() as usize;
        let trials = 60_000;
        let mut counts1 = vec![0u64; l];
        let mut counts2 = vec![0u64; l];
        let mut rng = Prg::seed_from_u64(123);
        for _ in 0..trials {
            let s1 = sketcher
                .sketch_value_with_stats(id, &subset, &d1, &mut rng)
                .unwrap();
            let s2 = sketcher
                .sketch_value_with_stats(id, &subset, &d2, &mut rng)
                .unwrap();
            counts1[s1.sketch.key as usize] += 1;
            counts2[s2.sketch.key as usize] += 1;
        }
        let bound = privacy_ratio_bound(p);
        for s in 0..l {
            let f1 = counts1[s] as f64 / trials as f64;
            let f2 = counts2[s] as f64 / trials as f64;
            if f1 > 0.0 && f2 > 0.0 {
                let ratio = f1 / f2;
                assert!(
                    ratio < bound * 1.25 && ratio > 1.0 / (bound * 1.25),
                    "key {s}: empirical ratio {ratio} breaks bound {bound}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot have more ones than keys")]
    fn rejects_impossible_shape() {
        let _ = outcome_probs(4, 5, 0.5);
    }
}
