//! Algorithm 1 — the sketching algorithm.
//!
//! ```text
//! Input: p-biased PRF H, parameter p, user data (id, d), subset B.
//! Output: a sketch s for d_B.
//! 1: Choose s uniformly at random without replacement.
//! 2: if H(id, B, d_B, s) = 1 then publish s and stop.
//! 5: else with probability p²/(1−p)² publish s and stop;
//!    otherwise continue from step 1.
//! 7: If all values of s are exhausted, report failure.
//! ```
//!
//! The published key is the *sketch*: after this rejection sampling,
//! `H(id, B, d_B, s) = 1` holds with probability `1 − p` (the user's true
//! value is biased towards 1) while `H(id, B, v, s) = 1` holds with
//! probability `p` for every other value `v` (Lemma 3.2). Privacy (Lemma
//! 3.3) holds over the user's private coins regardless of `H`.

use crate::hfun::HFunction;
use crate::params::{Error, SketchParams};
use crate::profile::{BitString, BitSubset, Profile, UserId};
use psketch_prf::Bias;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A published sketch: the accepted key for one `(user, subset)` pair.
///
/// The key occupies `sketch_bits` bits — `⌈log log(M/τ)⌉`-scale per Lemma
/// 3.1, i.e. about 10 bits for every practical configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sketch {
    /// The accepted key `s < 2^sketch_bits`.
    pub key: u64,
}

/// Outcome of a sketching run together with its iteration count
/// (used by experiment E7 to validate the paper's running-time claims).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchRun {
    /// The published sketch.
    pub sketch: Sketch,
    /// Number of candidate keys considered (≥ 1).
    pub iterations: u64,
}

/// The user-side sketching engine: an instantiated `H` plus parameters.
#[derive(Debug, Clone)]
pub struct Sketcher {
    params: SketchParams,
    h: HFunction,
    accept: Bias,
}

impl Sketcher {
    /// Builds a sketcher for the given parameters.
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        let h = HFunction::new(&params);
        let accept = Bias::from_prob(params.accept_prob());
        Self { params, h, accept }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// The instantiated public function `H`.
    #[must_use]
    pub fn h(&self) -> &HFunction {
        &self.h
    }

    /// Runs Algorithm 1 for `(id, d)` on subset `B`.
    ///
    /// `rng` supplies the user's *private* coins (key sampling and the
    /// accept/reject coin of step 5); privacy holds over these coins alone.
    ///
    /// # Errors
    ///
    /// * [`Error::KeySpaceExhausted`] if every candidate key is rejected
    ///   (probability `< τ/M` at the Lemma 3.1 length);
    /// * panics if `subset` references positions outside the profile
    ///   (caller bug, consistent with slice indexing contracts).
    pub fn sketch<R: Rng + ?Sized>(
        &self,
        id: UserId,
        profile: &Profile,
        subset: &BitSubset,
        rng: &mut R,
    ) -> Result<Sketch, Error> {
        self.sketch_with_stats(id, profile, subset, rng)
            .map(|run| run.sketch)
    }

    /// As [`Sketcher::sketch`] but also reports the iteration count.
    ///
    /// # Errors
    ///
    /// As [`Sketcher::sketch`].
    pub fn sketch_with_stats<R: Rng + ?Sized>(
        &self,
        id: UserId,
        profile: &Profile,
        subset: &BitSubset,
        rng: &mut R,
    ) -> Result<SketchRun, Error> {
        let value = profile.project(subset);
        self.sketch_value_with_stats(id, subset, &value, rng)
    }

    /// Runs Algorithm 1 directly on a projected value `d_B`.
    ///
    /// Exposed for the exact-analysis and experiment code that works with
    /// values rather than full profiles.
    ///
    /// # Errors
    ///
    /// As [`Sketcher::sketch`].
    pub fn sketch_value_with_stats<R: Rng + ?Sized>(
        &self,
        id: UserId,
        subset: &BitSubset,
        value: &BitString,
        rng: &mut R,
    ) -> Result<SketchRun, Error> {
        let key_space = self.params.key_space();
        let mut sampler = WithoutReplacement::new(key_space);
        // `(id, B, d_B)` is fixed for the whole rejection loop: encode it
        // once and splice only the candidate key per iteration.
        let mut prepared = self.h.prepare_query(subset, value);
        prepared.set_id(id);
        let mut iterations = 0;
        while let Some(candidate) = sampler.draw(rng) {
            iterations += 1;
            prepared.set_key(candidate);
            // Step 2: always accept a key that evaluates to 1.
            if prepared.eval() {
                return Ok(SketchRun {
                    sketch: Sketch { key: candidate },
                    iterations,
                });
            }
            // Step 5: accept a 0-key with probability p²/(1−p)².
            if self.accept.decide(rng.next_u64()) {
                return Ok(SketchRun {
                    sketch: Sketch { key: candidate },
                    iterations,
                });
            }
        }
        Err(Error::KeySpaceExhausted { key_space })
    }
}

/// Key spaces up to this size use the dense (`Vec`-backed) displacement
/// store; larger spaces fall back to the sparse `HashMap`. Every
/// Lemma 3.1-sized deployment (ℓ ≈ 10 bits) is comfortably dense.
const DENSE_KEY_SPACE_LIMIT: u64 = 1 << 13;

/// Displaced-entry storage for the lazy Fisher–Yates shuffle.
///
/// The dense variant is a zero-initialized `Vec` where slot `i` holds
/// `0` for "still identity" or `value + 1` for a displaced entry: one
/// cheap allocation per sketch instead of a `HashMap` with per-draw
/// hashing (the previous implementation allocated and grew a fresh map
/// on every sketch call, which dominated Algorithm 1's hot loop).
#[derive(Debug)]
enum Displaced {
    Dense(Vec<u64>),
    Sparse(HashMap<u64, u64>),
}

impl Displaced {
    #[inline]
    fn get(&self, i: u64) -> u64 {
        match self {
            Self::Dense(slots) => {
                let s = slots[i as usize];
                if s == 0 {
                    i
                } else {
                    s - 1
                }
            }
            Self::Sparse(map) => map.get(&i).copied().unwrap_or(i),
        }
    }

    #[inline]
    fn set(&mut self, i: u64, value: u64) {
        match self {
            Self::Dense(slots) => slots[i as usize] = value + 1,
            Self::Sparse(map) => {
                map.insert(i, value);
            }
        }
    }
}

/// Uniform sampling without replacement from `0..n`.
///
/// A lazy Fisher–Yates shuffle: conceptually we shuffle the array
/// `[0, 1, …, n−1]`, storing only displaced entries. Each `draw` returns
/// the next element of a uniformly random permutation, so the sequence of
/// candidates matches Algorithm 1's "choose s uniformly at random without
/// replacement" exactly. Both storage variants consume identical
/// randomness and produce identical permutations.
#[derive(Debug)]
struct WithoutReplacement {
    n: u64,
    next: u64,
    displaced: Displaced,
}

impl WithoutReplacement {
    fn new(n: u64) -> Self {
        let displaced = if n <= DENSE_KEY_SPACE_LIMIT {
            Displaced::Dense(vec![0; n as usize])
        } else {
            Displaced::Sparse(HashMap::new())
        };
        Self {
            n,
            next: 0,
            displaced,
        }
    }

    fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        if self.next >= self.n {
            return None;
        }
        // Pick a uniform index in [next, n) and swap it to the front.
        let span = self.n - self.next;
        let j = self.next + uniform_u64(rng, span);
        let picked = self.displaced.get(j);
        if j != self.next {
            let front = self.displaced.get(self.next);
            self.displaced.set(j, front);
        }
        self.next += 1;
        Some(picked)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Classic Lemire-style rejection: draw until below the largest
    // multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn sketcher(p: f64, bits: u8) -> Sketcher {
        Sketcher::new(SketchParams::with_sip(p, bits, GlobalKey::from_seed(11)).unwrap())
    }

    #[test]
    fn sketch_key_is_within_key_space() {
        let sk = sketcher(0.3, 6);
        let profile = Profile::from_bits(&[true, false, true, true]);
        let subset = BitSubset::range(0, 4);
        let mut rng = Prg::seed_from_u64(1);
        for i in 0..200 {
            let s = sk.sketch(UserId(i), &profile, &subset, &mut rng).unwrap();
            assert!(s.key < 64);
        }
    }

    #[test]
    fn lemma_3_2_bias_towards_true_value() {
        // After sketching, H(id, B, d_B, s) = 1 with probability 1 − p and
        // H(id, B, v, s) = 1 with probability p for v ≠ d_B.
        let p = 0.3;
        let sk = sketcher(p, 10);
        let subset = BitSubset::range(0, 3);
        let true_profile = Profile::from_bits(&[true, false, true]);
        let other_value = BitString::from_bits(&[false, false, true]);
        let mut rng = Prg::seed_from_u64(2);
        let n = 20_000;
        let mut hits_true = 0;
        let mut hits_other = 0;
        for i in 0..n {
            let id = UserId(i);
            let s = sk.sketch(id, &true_profile, &subset, &mut rng).unwrap();
            let proj = true_profile.project(&subset);
            if sk.h().eval(id, &subset, &proj, s.key) {
                hits_true += 1;
            }
            if sk.h().eval(id, &subset, &other_value, s.key) {
                hits_other += 1;
            }
        }
        let f_true = f64::from(hits_true) / n as f64;
        let f_other = f64::from(hits_other) / n as f64;
        // 5σ ≈ 0.016 at n = 20k.
        assert!(
            (f_true - (1.0 - p)).abs() < 0.017,
            "true-value rate {f_true} should be ≈ {}",
            1.0 - p
        );
        assert!(
            (f_other - p).abs() < 0.017,
            "other-value rate {f_other} should be ≈ {p}"
        );
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        // Force exhaustion: 1-bit key space, and find a user whose two
        // candidate keys both evaluate to 0; with the accept coin forced
        // low probability, failures must eventually surface as errors.
        let sk = sketcher(0.05, 1); // accept prob ≈ 0.0028, L = 2
        let profile = Profile::from_bits(&[true]);
        let subset = BitSubset::single(0);
        let mut rng = Prg::seed_from_u64(3);
        let mut saw_failure = false;
        for i in 0..4_000 {
            match sk.sketch(UserId(i), &profile, &subset, &mut rng) {
                Ok(s) => assert!(s.key < 2),
                Err(Error::KeySpaceExhausted { key_space }) => {
                    assert_eq!(key_space, 2);
                    saw_failure = true;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            saw_failure,
            "expected at least one exhaustion at p=0.05, ℓ=1"
        );
    }

    #[test]
    fn iterations_do_not_exceed_key_space() {
        let sk = sketcher(0.1, 3);
        let profile = Profile::from_bits(&[false, true]);
        let subset = BitSubset::range(0, 2);
        let mut rng = Prg::seed_from_u64(4);
        for i in 0..2_000 {
            if let Ok(run) = sk.sketch_with_stats(UserId(i), &profile, &subset, &mut rng) {
                assert!(run.iterations >= 1 && run.iterations <= 8);
            }
        }
    }

    #[test]
    fn expected_iterations_tracks_theory() {
        // Per iteration the algorithm stops with probability
        // p + (1−p)·r = p/(1−p); mean iterations ≈ (1−p)/p (truncated by
        // the finite key space, which only lowers it).
        let p = 0.4;
        let sk = sketcher(p, 12);
        let profile = Profile::from_bits(&[true, true, false]);
        let subset = BitSubset::range(0, 3);
        let mut rng = Prg::seed_from_u64(5);
        let n = 30_000;
        let total: u64 = (0..n)
            .map(|i| {
                sk.sketch_with_stats(UserId(i), &profile, &subset, &mut rng)
                    .unwrap()
                    .iterations
            })
            .sum();
        let mean = total as f64 / n as f64;
        let theory = (1.0 - p) / p;
        assert!(
            (mean - theory).abs() < 0.05,
            "mean iterations {mean} vs theory {theory}"
        );
    }

    #[test]
    fn without_replacement_visits_every_key_once() {
        let mut rng = Prg::seed_from_u64(6);
        for n in [1u64, 2, 7, 64] {
            let mut sampler = WithoutReplacement::new(n);
            let mut seen = vec![false; n as usize];
            while let Some(v) = sampler.draw(&mut rng) {
                assert!(!seen[v as usize], "key {v} drawn twice (n={n})");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "missed keys at n={n}");
        }
    }

    #[test]
    fn without_replacement_first_draw_is_uniform() {
        let mut rng = Prg::seed_from_u64(7);
        let n = 8u64;
        let trials = 64_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..trials {
            let mut sampler = WithoutReplacement::new(n);
            counts[sampler.draw(&mut rng).unwrap() as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (k, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.06, "first-draw frequency of {k} off by {dev}");
        }
    }

    #[test]
    fn uniform_u64_covers_non_power_of_two_spans() {
        let mut rng = Prg::seed_from_u64(8);
        let span = 5u64;
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[uniform_u64(&mut rng, span) as usize] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / 50_000.0;
            assert!((freq - 0.2).abs() < 0.01, "uniform_u64 biased: {freq}");
        }
    }

    #[test]
    fn without_replacement_dense_and_sparse_agree() {
        // Both displacement stores must yield the identical permutation
        // from the same randomness (determinism across the size cutoff).
        let n = 64u64;
        let mut dense = WithoutReplacement::new(n);
        let mut sparse = WithoutReplacement {
            n,
            next: 0,
            displaced: Displaced::Sparse(HashMap::new()),
        };
        assert!(matches!(dense.displaced, Displaced::Dense(_)));
        let mut rng_a = Prg::seed_from_u64(9);
        let mut rng_b = Prg::seed_from_u64(9);
        for _ in 0..n {
            assert_eq!(dense.draw(&mut rng_a), sparse.draw(&mut rng_b));
        }
    }

    #[test]
    fn large_key_spaces_use_sparse_storage() {
        let sampler = WithoutReplacement::new(1 << 20);
        assert!(matches!(sampler.displaced, Displaced::Sparse(_)));
    }

    #[test]
    fn sketches_are_serializable() {
        // Real serde round trips (via the JSON front end), not a Debug
        // smoke test: sketches and estimates are wire types.
        let s = Sketch { key: 9 };
        let json = serde_json::to_string(&s).unwrap();
        let back: Sketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        let e = crate::estimator::Estimate {
            fraction: (0.9 - 0.3) / (1.0 - 0.6),
            raw: 0.9,
            sample_size: 1234,
            p: 0.3,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: crate::estimator::Estimate = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fraction.to_bits(), e.fraction.to_bits());
        assert_eq!(back.raw.to_bits(), e.raw.to_bits());
        assert_eq!(back.p.to_bits(), e.p.to_bits());
        assert_eq!(back.sample_size, e.sample_size);
    }
}
