//! Privacy budget accounting across multiple sketch releases.
//!
//! Corollary 3.4: releasing `l` sketches multiplies the worst-case
//! likelihood ratio to `((1−p)/p)^{4l}`. A user who wants end-to-end
//! ε-privacy must therefore either cap the number of sketches they release
//! at a given bias, or pick the bias up front from the planned release
//! count via `p = 1/2 − ε/(16l)`. [`PrivacyAccountant`] enforces the cap.

use crate::params::Error;
use crate::theory::{epsilon_for, p_for_epsilon, privacy_ratio_bound};

/// Tracks the privacy cost of sketches released by one user.
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    p: f64,
    epsilon_budget: f64,
    released: u32,
}

impl PrivacyAccountant {
    /// Creates an accountant for bias `p` and total budget `ε`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1/2` and `ε > 0` (construction-time
    /// programming errors).
    #[must_use]
    pub fn new(p: f64, epsilon_budget: f64) -> Self {
        assert!(p > 0.0 && p < 0.5, "bias must be in (0, 1/2)");
        assert!(epsilon_budget > 0.0, "budget must be positive");
        Self {
            p,
            epsilon_budget,
            released: 0,
        }
    }

    /// Plans an accountant from a budget and an intended release count.
    ///
    /// Corollary 3.4 suggests `p = 1/2 − ε/(16l)`, but that closing step is
    /// first-order in ε and overspends the exact budget slightly (see
    /// [`p_for_epsilon`]). We instead invert the ratio bound exactly:
    /// `((1−p)/p)^{4l} = 1 + ε  ⇔  p = 1/(1 + (1+ε)^{1/(4l)})`, which is
    /// never smaller than necessary and guarantees the planned count is
    /// chargeable.
    #[must_use]
    pub fn plan(epsilon_budget: f64, planned_sketches: u32) -> Self {
        assert!(planned_sketches > 0, "need at least one planned sketch");
        assert!(epsilon_budget > 0.0, "budget must be positive");
        let rho = (1.0 + epsilon_budget).powf(1.0 / (4.0 * f64::from(planned_sketches)));
        let p = 1.0 / (1.0 + rho);
        // Exact inversion sits at (or above) the paper's first-order p,
        // i.e. it is at least as private.
        debug_assert!(p >= p_for_epsilon(epsilon_budget, planned_sketches) - 1e-12);
        Self::new(p, epsilon_budget)
    }

    /// The bias in force.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Sketches released so far.
    #[must_use]
    pub fn released(&self) -> u32 {
        self.released
    }

    /// The ε spent so far: `((1−p)/p)^{4l} − 1` for `l` releases.
    #[must_use]
    pub fn spent_epsilon(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            epsilon_for(self.p, self.released)
        }
    }

    /// The total budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.epsilon_budget
    }

    /// How many sketches may *still* be released without the spent ε
    /// exceeding the budget.
    #[must_use]
    pub fn remaining_sketches(&self) -> u32 {
        // Solve ((1−p)/p)^{4l} ≤ 1 + ε for l.
        let per_sketch = privacy_ratio_bound(self.p).ln();
        if per_sketch <= 0.0 {
            return u32::MAX; // p = 1/2 exactly is unreachable (validated)
        }
        let max_total = ((1.0 + self.epsilon_budget).ln() / per_sketch).floor();
        let max_total = if max_total >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            max_total as u32
        };
        max_total.saturating_sub(self.released)
    }

    /// Charges the budget for `count` sketch releases.
    ///
    /// # Errors
    ///
    /// [`Error::BudgetExceeded`] (without mutating state) if the charge
    /// would push spent ε above the budget.
    pub fn charge(&mut self, count: u32) -> Result<(), Error> {
        let hypothetical = epsilon_for(self.p, self.released + count);
        if hypothetical > self.epsilon_budget * (1.0 + 1e-12) {
            return Err(Error::BudgetExceeded {
                spent: hypothetical,
                budget: self.epsilon_budget,
            });
        }
        self.released += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_accountant_has_zero_spend() {
        let a = PrivacyAccountant::new(0.45, 2.0);
        assert_eq!(a.spent_epsilon(), 0.0);
        assert_eq!(a.released(), 0);
        assert!(a.remaining_sketches() > 0);
    }

    #[test]
    fn charging_accumulates_multiplicatively() {
        let mut a = PrivacyAccountant::new(0.45, 100.0);
        a.charge(1).unwrap();
        let one = a.spent_epsilon();
        a.charge(1).unwrap();
        let two = a.spent_epsilon();
        // (1+ε₂) = (1+ε₁)², i.e. ratios compose multiplicatively.
        assert!(((1.0 + two) - (1.0 + one).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn budget_is_enforced_atomically() {
        let mut a = PrivacyAccountant::new(0.4, 0.5);
        // ratio per sketch = (0.6/0.4)^4 = 5.06 ⇒ ε ≈ 4.06 per sketch;
        // a single release busts a 0.5 budget.
        let before = a.released();
        assert!(matches!(a.charge(1), Err(Error::BudgetExceeded { .. })));
        assert_eq!(a.released(), before, "failed charge must not mutate");
    }

    #[test]
    fn plan_meets_budget_for_planned_count() {
        for &(eps, l) in &[(0.1f64, 4u32), (0.5, 10), (0.2, 1), (2.0, 32)] {
            let mut a = PrivacyAccountant::plan(eps, l);
            // Exact planning guarantees the full planned count fits.
            a.charge(l)
                .unwrap_or_else(|e| panic!("plan(ε={eps}, l={l}) under-delivered: {e}"));
            // ... and lands exactly on the budget (up to rounding).
            assert!(
                (a.spent_epsilon() - eps).abs() < 1e-9,
                "spent {} should equal budget {eps}",
                a.spent_epsilon()
            );
            // The exact p is at least as private as the paper's p.
            assert!(a.p() >= p_for_epsilon(eps, l) - 1e-12);
        }
    }

    #[test]
    fn remaining_sketches_decreases() {
        let mut a = PrivacyAccountant::new(0.49, 1.0);
        let before = a.remaining_sketches();
        a.charge(2).unwrap();
        assert_eq!(a.remaining_sketches(), before - 2);
    }

    #[test]
    fn remaining_consistent_with_charge() {
        let mut a = PrivacyAccountant::new(0.48, 0.8);
        let n = a.remaining_sketches();
        assert!(n > 0);
        a.charge(n).unwrap();
        assert!(matches!(a.charge(1), Err(Error::BudgetExceeded { .. })));
    }

    #[test]
    #[should_panic(expected = "bias must be in (0, 1/2)")]
    fn rejects_bias_above_half() {
        let _ = PrivacyAccountant::new(0.6, 1.0);
    }
}
