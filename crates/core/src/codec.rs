//! Compact binary encoding of sketches and sketch bundles.
//!
//! The paper's selling point includes the *size* of the published data:
//! `⌈log log O(M)⌉` bits per sketch. This module provides the wire format
//! a user agent would actually publish: a bit-packed bundle of sketches
//! (each exactly `ℓ` bits) preceded by a small fixed header. The encoder
//! demonstrates the paper's size claim concretely — experiment E6 prints
//! the bytes-per-user numbers straight from here.

use crate::params::Error;
use crate::sketcher::Sketch;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic byte identifying a sketch bundle.
const MAGIC: u8 = 0xB5;
/// Format version.
const VERSION: u8 = 1;

/// Encodes a bundle of same-length sketches into a bit-packed byte string.
///
/// Layout: `magic ‖ version ‖ sketch_bits ‖ count(u32 LE) ‖ packed keys`,
/// where each key occupies exactly `sketch_bits` bits, LSB-first.
///
/// # Panics
///
/// Panics if `sketch_bits` is 0 or > 30 (parameter validation happens at
/// [`crate::SketchParams`] construction; this is a caller contract) or if
/// a key does not fit in `sketch_bits` bits.
#[must_use]
pub fn encode_bundle(sketch_bits: u8, sketches: &[Sketch]) -> Bytes {
    assert!((1..=30).contains(&sketch_bits), "invalid sketch_bits");
    let mut out = BytesMut::with_capacity(7 + sketches.len() * usize::from(sketch_bits) / 8 + 1);
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(sketch_bits);
    out.put_u32_le(u32::try_from(sketches.len()).expect("bundle too large"));

    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for s in sketches {
        assert!(
            s.key < (1u64 << sketch_bits),
            "key {} exceeds {} bits",
            s.key,
            sketch_bits
        );
        acc |= s.key << acc_bits;
        acc_bits += u32::from(sketch_bits);
        while acc_bits >= 8 {
            out.put_u8((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.put_u8((acc & 0xFF) as u8);
    }
    out.freeze()
}

/// Decodes a bundle produced by [`encode_bundle`].
///
/// # Errors
///
/// [`Error::Codec`] on truncated input, bad magic/version, or an invalid
/// sketch length.
pub fn decode_bundle(mut data: &[u8]) -> Result<(u8, Vec<Sketch>), Error> {
    let fail = |reason: &str| Error::Codec {
        reason: reason.to_string(),
    };
    if data.remaining() < 7 {
        return Err(fail("truncated header"));
    }
    let magic = data.get_u8();
    if magic != MAGIC {
        return Err(fail("bad magic byte"));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(fail("unsupported version"));
    }
    let sketch_bits = data.get_u8();
    if !(1..=30).contains(&sketch_bits) {
        return Err(fail("invalid sketch length"));
    }
    let count = data.get_u32_le() as usize;
    let need_bits = count * usize::from(sketch_bits);
    if data.remaining() * 8 < need_bits {
        return Err(fail("truncated payload"));
    }

    let mut sketches = Vec::with_capacity(count);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mask = (1u64 << sketch_bits) - 1;
    for _ in 0..count {
        while acc_bits < u32::from(sketch_bits) {
            acc |= u64::from(data.get_u8()) << acc_bits;
            acc_bits += 8;
        }
        sketches.push(Sketch { key: acc & mask });
        acc >>= sketch_bits;
        acc_bits -= u32::from(sketch_bits);
    }
    Ok((sketch_bits, sketches))
}

/// The exact payload size in bytes for `count` sketches of `sketch_bits`
/// bits (header included) — the paper's "minuscule" publication cost.
#[must_use]
pub fn bundle_size_bytes(sketch_bits: u8, count: usize) -> usize {
    7 + (count * usize::from(sketch_bits)).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let sketches = vec![Sketch { key: 0 }, Sketch { key: 5 }, Sketch { key: 7 }];
        let encoded = encode_bundle(3, &sketches);
        let (bits, decoded) = decode_bundle(&encoded).unwrap();
        assert_eq!(bits, 3);
        assert_eq!(decoded, sketches);
    }

    #[test]
    fn empty_bundle() {
        let encoded = encode_bundle(10, &[]);
        let (bits, decoded) = decode_bundle(&encoded).unwrap();
        assert_eq!(bits, 10);
        assert!(decoded.is_empty());
        assert_eq!(encoded.len(), bundle_size_bytes(10, 0));
    }

    #[test]
    fn size_formula_matches_encoding() {
        for bits in [1u8, 3, 7, 8, 10, 13, 30] {
            for count in [0usize, 1, 2, 7, 100] {
                let sketches: Vec<Sketch> = (0..count as u64)
                    .map(|i| Sketch {
                        key: i % (1 << bits),
                    })
                    .collect();
                let encoded = encode_bundle(bits, &sketches);
                assert_eq!(
                    encoded.len(),
                    bundle_size_bytes(bits, count),
                    "bits={bits} count={count}"
                );
            }
        }
    }

    #[test]
    fn ten_bit_sketches_cost_little() {
        // The headline: 100 sketches at 10 bits = 125 payload bytes.
        assert_eq!(bundle_size_bytes(10, 100), 7 + 125);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let encoded = encode_bundle(4, &[Sketch { key: 9 }]);
        let mut bad = encoded.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_bundle(&bad), Err(Error::Codec { .. })));
        assert!(matches!(
            decode_bundle(&encoded[..encoded.len() - 1]),
            Err(Error::Codec { .. })
        ));
        assert!(matches!(decode_bundle(&[]), Err(Error::Codec { .. })));
    }

    #[test]
    fn rejects_wrong_version() {
        let encoded = encode_bundle(4, &[]);
        let mut bad = encoded.to_vec();
        bad[1] = 99;
        assert!(matches!(decode_bundle(&bad), Err(Error::Codec { .. })));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_key_panics() {
        let _ = encode_bundle(2, &[Sketch { key: 4 }]);
    }

    proptest! {
        #[test]
        fn roundtrip_property(
            bits in 1u8..=30,
            keys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let sketches: Vec<Sketch> = keys
                .into_iter()
                .map(|k| Sketch { key: k & ((1u64 << bits) - 1) })
                .collect();
            let encoded = encode_bundle(bits, &sketches);
            let (decoded_bits, decoded) = decode_bundle(&encoded).unwrap();
            prop_assert_eq!(decoded_bits, bits);
            prop_assert_eq!(decoded, sketches);
        }
    }
}
