//! Integer attributes laid out over profile bits — the paper's §4.1 setup.
//!
//! "We assume that each profile holds several k-bit integer attributes
//! a, b, c, … stored in binary form in the user's profile d. […] Let `A`
//! denote the subset of bits used to store the value of attribute a […]
//! let `Aᵢ` denote the subset which contains the i highest bits of a \[and\]
//! `Aᵢ` the index of the i-th highest bit."
//!
//! [`IntField`] is that layout: a contiguous window of `width` profile
//! bits, stored **most-significant-bit first** (matching the paper's
//! `a_u = Σ a_{u,i}·2^{k−i}` indexing, where `a_{u,1}` is the high bit).

use crate::profile::{BitString, BitSubset, Profile};
use serde::{Deserialize, Serialize};

/// A `width`-bit unsigned integer attribute occupying profile positions
/// `[offset, offset + width)`, MSB first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntField {
    offset: u32,
    width: u32,
}

impl IntField {
    /// Defines a field.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 63`.
    #[must_use]
    pub fn new(offset: u32, width: u32) -> Self {
        assert!((1..=63).contains(&width), "width must be in [1, 63]");
        Self { offset, width }
    }

    /// First profile position of the field.
    #[must_use]
    pub const fn offset(&self) -> u32 {
        self.offset
    }

    /// Bit width `k`.
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Largest representable value `2^k − 1`.
    #[must_use]
    pub const fn max_value(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// One past the last profile position.
    #[must_use]
    pub const fn end(&self) -> u32 {
        self.offset + self.width
    }

    /// Profile position of the `i`-th highest bit, `i ∈ [1, k]`
    /// (the paper's `Aᵢ` index: `i = 1` is the most significant bit).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ width`.
    #[must_use]
    pub fn bit_position(&self, i: u32) -> u32 {
        assert!(
            i >= 1 && i <= self.width,
            "bit index {i} out of [1, {}]",
            self.width
        );
        self.offset + (i - 1)
    }

    /// The single-bit subset `{Aᵢ}` for the `i`-th highest bit.
    #[must_use]
    pub fn bit_subset(&self, i: u32) -> BitSubset {
        BitSubset::single(self.bit_position(i))
    }

    /// The subset of the `i` highest bits (the paper's `Aᵢ` prefix set).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ width`.
    #[must_use]
    pub fn prefix_subset(&self, i: u32) -> BitSubset {
        assert!(
            i >= 1 && i <= self.width,
            "prefix {i} out of [1, {}]",
            self.width
        );
        BitSubset::range(self.offset, i)
    }

    /// The full attribute subset `A`.
    #[must_use]
    pub fn subset(&self) -> BitSubset {
        BitSubset::range(self.offset, self.width)
    }

    /// Writes `value` into `profile` (MSB at the lowest position).
    ///
    /// # Panics
    ///
    /// Panics if `value > max_value()` or the field exceeds the profile.
    pub fn write(&self, profile: &mut Profile, value: u64) {
        assert!(
            value <= self.max_value(),
            "value {value} exceeds {}-bit field",
            self.width
        );
        for i in 1..=self.width {
            let bit = (value >> (self.width - i)) & 1 == 1;
            profile.set(self.bit_position(i) as usize, bit);
        }
    }

    /// Reads the field from `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the profile.
    #[must_use]
    pub fn read(&self, profile: &Profile) -> u64 {
        (1..=self.width).fold(0u64, |acc, i| {
            (acc << 1) | u64::from(profile.get(self.bit_position(i) as usize))
        })
    }

    /// The `i` highest bits of `value` as a [`BitString`] aligned with
    /// [`IntField::prefix_subset`] (MSB first, matching position order).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ width`.
    #[must_use]
    pub fn prefix_value(&self, value: u64, i: u32) -> BitString {
        assert!(i >= 1 && i <= self.width);
        (1..=i)
            .map(|j| (value >> (self.width - j)) & 1 == 1)
            .collect()
    }

    /// The full value as a position-aligned [`BitString`].
    #[must_use]
    pub fn full_value(&self, value: u64) -> BitString {
        self.prefix_value(value, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let field = IntField::new(3, 8);
        let mut profile = Profile::zeros(16);
        for v in [0u64, 1, 37, 128, 255] {
            field.write(&mut profile, v);
            assert_eq!(field.read(&profile), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn msb_first_layout() {
        let field = IntField::new(0, 4);
        let mut profile = Profile::zeros(4);
        field.write(&mut profile, 0b1000);
        // MSB lands at the lowest position.
        assert!(profile.get(0));
        assert!(!profile.get(1) && !profile.get(2) && !profile.get(3));
    }

    #[test]
    fn bit_position_matches_paper_indexing() {
        let field = IntField::new(10, 4);
        assert_eq!(field.bit_position(1), 10); // highest bit
        assert_eq!(field.bit_position(4), 13); // lowest bit
        assert_eq!(field.prefix_subset(2).positions(), &[10, 11]);
        assert_eq!(field.subset().positions(), &[10, 11, 12, 13]);
    }

    #[test]
    fn prefix_value_aligns_with_prefix_subset() {
        let field = IntField::new(0, 4);
        let mut profile = Profile::zeros(4);
        field.write(&mut profile, 0b1010);
        for i in 1..=4 {
            let prefix = field.prefix_value(0b1010, i);
            assert!(
                profile.satisfies(&field.prefix_subset(i), &prefix),
                "prefix {i} misaligned"
            );
        }
    }

    #[test]
    fn disjoint_fields_do_not_clobber() {
        let a = IntField::new(0, 4);
        let b = IntField::new(4, 4);
        let mut profile = Profile::zeros(8);
        a.write(&mut profile, 9);
        b.write(&mut profile, 6);
        assert_eq!(a.read(&profile), 9);
        assert_eq!(b.read(&profile), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_rejected() {
        let field = IntField::new(0, 3);
        let mut profile = Profile::zeros(3);
        field.write(&mut profile, 8);
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn zero_width_rejected() {
        let _ = IntField::new(0, 0);
    }

    #[test]
    fn max_value_and_end() {
        let f = IntField::new(2, 5);
        assert_eq!(f.max_value(), 31);
        assert_eq!(f.end(), 7);
        assert_eq!(f.offset(), 2);
        assert_eq!(f.width(), 5);
    }
}
