//! The paper's quantitative results as executable formulas.
//!
//! Each function cites the lemma it implements; the experiment harness
//! (crate `psketch-bench`) checks every one of them against measurement.

/// Lemma 3.1 — minimal sketch length.
///
/// Returns the smallest `ℓ` such that Algorithm 1 fails for *any* of `m`
/// users with probability below `tau`:
/// `ℓ = ⌈log₂( log(τ/M) / log(1−p²) )⌉` (the paper writes the equivalent
/// `⌈log log(M/τ)/|log(1−p²)|⌉`).
///
/// # Panics
///
/// Panics unless `0 < p < 1`, `0 < tau < 1` and `m ≥ 1` (programming
/// errors, not runtime conditions).
#[must_use]
pub fn min_sketch_bits(m: u64, tau: f64, p: f64) -> u8 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    assert!(tau > 0.0 && tau < 1.0, "tau must be in (0,1), got {tau}");
    assert!(m >= 1, "population must be non-empty");
    // Need (1 − p²)^(2^ℓ) ≤ τ/M  ⇔  2^ℓ ≥ ln(τ/M)/ln(1 − p²).
    let needed_keys = ((tau / m as f64).ln() / (1.0 - p * p).ln()).max(1.0);
    let bits = needed_keys.log2().ceil().max(1.0);
    // Representable parameters cap far below u8::MAX.
    bits as u8
}

/// Per-user failure probability of Algorithm 1 at sketch length `bits`:
/// the Lemma 3.1 bound `(1 − p²)^{2^ℓ}`.
///
/// This is the bound used in the paper's union-bound step. The *exact*
/// failure probability is `(1 − p·(2−p)·r̄)`-shaped and lower; experiment
/// E1 measures the gap.
#[must_use]
pub fn failure_prob_bound(bits: u8, p: f64) -> f64 {
    let keys = (1u64 << bits) as f64;
    (1.0 - p * p).powf(keys)
}

/// Exact per-user failure probability of Algorithm 1.
///
/// The algorithm fails iff every key evaluates to 0 under `H` *and* every
/// accept coin rejects: each key independently "survives" with probability
/// `(1−p)(1−r)` where `r = p²/(1−p)²`, so
/// `Pr[fail] = ((1−p)(1−r))^{2^ℓ}`.
#[must_use]
pub fn failure_prob_exact(bits: u8, p: f64) -> f64 {
    let keys = (1u64 << bits) as f64;
    let r = (p / (1.0 - p)).powi(2);
    ((1.0 - p) * (1.0 - r)).powf(keys)
}

/// Lemma 3.3 — the single-sketch privacy ratio bound `((1−p)/p)^4`.
#[must_use]
pub fn privacy_ratio_bound(p: f64) -> f64 {
    ((1.0 - p) / p).powi(4)
}

/// Corollary 3.4 — the `l`-sketch privacy ratio bound `((1−p)/p)^{4l}`.
#[must_use]
pub fn privacy_ratio_bound_multi(p: f64, sketches: u32) -> f64 {
    privacy_ratio_bound(p).powi(sketches as i32)
}

/// Corollary 3.4 — ε-privacy achieved by releasing `l` sketches at bias
/// `p`: the ratio bound minus one.
#[must_use]
pub fn epsilon_for(p: f64, sketches: u32) -> f64 {
    privacy_ratio_bound_multi(p, sketches) - 1.0
}

/// Corollary 3.4 — sufficient bias for an ε budget over `l` sketches:
/// `p = 1/2 − ε/(16·l)`.
///
/// The paper: "if p ≥ 1/2 − ε/(16l) then 1 − ε ≤ Pr[s|d′]/Pr[s|d″] ≤ 1+ε".
/// Note the corollary's closing step is the first-order approximation
/// `(1 + ε/q)^q ≈ 1 + ε`; the exact achieved ratio is `e^ε`-shaped, i.e.
/// `1 + ε + O(ε²)`. Experiment E4 reports both the paper's nominal budget
/// and the exactly achieved ratio.
///
/// # Panics
///
/// Panics for `sketches == 0` or non-positive `epsilon`.
#[must_use]
pub fn p_for_epsilon(epsilon: f64, sketches: u32) -> f64 {
    assert!(sketches > 0, "need at least one sketch");
    assert!(epsilon > 0.0, "epsilon must be positive");
    0.5 - epsilon / (16.0 * f64::from(sketches))
}

/// Lemma 4.1 — probability that Algorithm 2's answer misses the truth by
/// more than `eps` with `m` users: `exp(−ε²(1−2p)²·M/4)`.
#[must_use]
pub fn query_failure_prob(m: u64, p: f64, eps: f64) -> f64 {
    (-eps * eps * (1.0 - 2.0 * p).powi(2) * m as f64 / 4.0).exp()
}

/// Lemma 4.1, inverted — error tolerance achievable with confidence
/// `1 − δ` from `m` users: `ε = 2·√(ln(1/δ)/M)/(1−2p)`.
#[must_use]
pub fn query_error_bound(m: u64, p: f64, delta: f64) -> f64 {
    2.0 * ((1.0 / delta).ln() / m as f64).sqrt() / (1.0 - 2.0 * p)
}

/// §3 running-time analysis — expected Algorithm 1 iterations.
///
/// Each iteration terminates with probability `p + (1−p)·r = p/(1−p)`
/// (over `H` and the accept coin), so the untruncated expectation is
/// `(1−p)/p`.
#[must_use]
pub fn expected_iterations(p: f64) -> f64 {
    (1.0 - p) / p
}

/// §3 running-time analysis — the paper's *worst-case* expected iteration
/// bound `(1−p)²/p²` (attained when every key evaluates to 0 and only the
/// step-5 coin can stop the loop).
#[must_use]
pub fn expected_iterations_worst_case(p: f64) -> f64 {
    ((1.0 - p) / p).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_sketch_bits_satisfies_the_bound() {
        for &(m, tau, p) in &[
            (1_000u64, 1e-3, 0.3),
            (1_000_000, 1e-6, 0.25),
            (10_000, 1e-4, 0.45),
            (100, 0.01, 0.49),
        ] {
            let bits = min_sketch_bits(m, tau, p);
            let per_user = failure_prob_bound(bits, p);
            assert!(
                per_user * m as f64 <= tau * (1.0 + 1e-9),
                "ℓ={bits} fails: union bound {} > τ={tau}",
                per_user * m as f64
            );
            // Minimality: one bit fewer must violate the bound (unless ℓ=1).
            if bits > 1 {
                let per_user_smaller = failure_prob_bound(bits - 1, p);
                assert!(
                    per_user_smaller * m as f64 > tau,
                    "ℓ={bits} not minimal for (m={m}, τ={tau}, p={p})"
                );
            }
        }
    }

    #[test]
    fn paper_claim_ten_bits_suffice_for_quarter_bias() {
        // "if p > 1/4, then a 10 bit sketch is sufficient for any
        // foreseeable practical use": check M = 10⁹, τ = 10⁻⁹.
        let bits = min_sketch_bits(1_000_000_000, 1e-9, 0.25);
        assert!(bits <= 10, "paper's 10-bit claim violated: ℓ={bits}");
    }

    #[test]
    fn exact_failure_below_bound() {
        for &p in &[0.1, 0.25, 0.4, 0.49] {
            for bits in 1..=8u8 {
                let exact = failure_prob_exact(bits, p);
                let bound = failure_prob_bound(bits, p);
                assert!(
                    exact <= bound + 1e-15,
                    "exact {exact} exceeds bound {bound} at p={p}, ℓ={bits}"
                );
            }
        }
    }

    #[test]
    fn privacy_ratio_shrinks_towards_half() {
        assert!(privacy_ratio_bound(0.45) < privacy_ratio_bound(0.3));
        assert!(privacy_ratio_bound(0.499) < 1.02);
        // p = 0.25: ratio (0.75/0.25)^4 = 81.
        assert!((privacy_ratio_bound(0.25) - 81.0).abs() < 1e-9);
    }

    #[test]
    fn multi_sketch_ratio_composes() {
        let one = privacy_ratio_bound(0.4);
        assert!((privacy_ratio_bound_multi(0.4, 3) - one.powi(3)).abs() < 1e-9);
        assert!((epsilon_for(0.4, 1) - (one - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn p_for_epsilon_meets_the_budget() {
        // The paper's closing step is first order in ε: the exact achieved
        // ratio is e^{ε(1+o(1))}. Verify achieved ε ≤ e^{1.05ε} − 1, and for
        // small ε that it is genuinely close to the nominal budget.
        for &(eps, l) in &[(0.1f64, 1u32), (0.1, 8), (0.5, 4), (1.0, 16), (0.2, 64)] {
            let p = p_for_epsilon(eps, l);
            assert!(p < 0.5 && p > 0.4, "p = {p} out of expected band");
            let achieved = epsilon_for(p, l);
            assert!(
                achieved <= (1.05 * eps).exp() - 1.0,
                "ε budget {eps} over l={l}: achieved {achieved}"
            );
            if eps <= 0.2 {
                assert!(
                    achieved <= 1.15 * eps,
                    "small-ε regime should be near-nominal: {achieved} vs {eps}"
                );
            }
        }
    }

    #[test]
    fn query_error_bound_matches_failure_prob() {
        // Plugging the inverted bound back in must give exactly δ.
        let (m, p, delta) = (10_000u64, 0.3, 0.05);
        let eps = query_error_bound(m, p, delta);
        let back = query_failure_prob(m, p, eps);
        assert!((back - delta).abs() < 1e-12);
    }

    #[test]
    fn query_error_is_width_free_and_m_scaling() {
        // ε scales as 1/√M.
        let e1 = query_error_bound(10_000, 0.3, 0.05);
        let e2 = query_error_bound(40_000, 0.3, 0.05);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_formulas() {
        assert!((expected_iterations(0.5 - 1e-12) - 1.0).abs() < 1e-6);
        assert!((expected_iterations(0.25) - 3.0).abs() < 1e-12);
        assert!((expected_iterations_worst_case(0.25) - 9.0).abs() < 1e-12);
        // Worst case dominates the typical case.
        for &p in &[0.1, 0.3, 0.45] {
            assert!(expected_iterations_worst_case(p) >= expected_iterations(p));
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1)")]
    fn min_sketch_bits_rejects_bad_p() {
        let _ = min_sketch_bits(10, 0.1, 1.5);
    }

    #[test]
    #[should_panic(expected = "need at least one sketch")]
    fn p_for_epsilon_rejects_zero_sketches() {
        let _ = p_for_epsilon(0.1, 0);
    }
}
