//! The analyst-side collection of published sketches.
//!
//! Once users publish sketches they become public; the analyst aggregates
//! them per attribute subset. [`SketchDb`] is that aggregation, stored
//! **columnar**: each subset owns a shard holding the user-id column and
//! the sketch-key column as plain `Vec<u64>`s, which is the layout the
//! batched Algorithm 2 scan consumes directly.
//!
//! Reads and writes are decoupled snapshot-style: writers append into a
//! shard's pending columns under a short mutex, while queries obtain an
//! [`Arc`]-shared [`SubsetSnapshot`] of the columns. Taking a snapshot is
//! an `Arc` clone whenever the shard is unchanged since the last snapshot;
//! after new appends the next snapshot re-publishes the columns once
//! (amortized over all subsequent queries). Queries therefore never
//! deep-clone records, and ingestion never blocks readers holding a
//! snapshot.

use crate::params::Error;
use crate::profile::{BitSubset, UserId};
use crate::sketcher::Sketch;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One published record: a user and the sketch they released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchRecord {
    /// The publishing user.
    pub id: UserId,
    /// The published sketch.
    pub sketch: Sketch,
}

/// The two columns of a shard, in insertion order.
#[derive(Debug, Default, Clone)]
struct Columns {
    ids: Vec<u64>,
    keys: Vec<u64>,
}

impl Columns {
    fn push(&mut self, id: UserId, sketch: Sketch) {
        self.ids.push(id.0);
        self.keys.push(sketch.key);
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// One subset's columnar shard: pending (write-side) columns plus the
/// last published snapshot.
#[derive(Debug, Default)]
struct Shard {
    pending: Mutex<Columns>,
    published: RwLock<Arc<Columns>>,
    stale: AtomicBool,
}

impl Shard {
    fn append(&self, id: UserId, sketch: Sketch) {
        self.pending.lock().push(id, sketch);
        // ord: release pairs with the AcqRel swap in `snapshot`, which
        // must observe the pending rows pushed above
        self.stale.store(true, Ordering::Release);
    }

    fn append_batch(&self, records: impl IntoIterator<Item = SketchRecord>) {
        let mut pending = self.pending.lock();
        for rec in records {
            pending.push(rec.id, rec.sketch);
        }
        drop(pending);
        // ord: release pairs with the AcqRel swap in `snapshot`
        self.stale.store(true, Ordering::Release);
    }

    fn len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Publishes the pending columns if they changed, then hands out the
    /// current snapshot (an `Arc` clone).
    fn snapshot(&self) -> Arc<Columns> {
        // ord: acquire sees the rows behind a writer's release store;
        // release keeps a racing snapshotter honest about the clear
        if self.stale.swap(false, Ordering::AcqRel) {
            // Clone *and* publish while holding the pending mutex:
            // appends and competing publishers serialize on it, so a
            // slow publisher can never overwrite a newer snapshot with
            // stale columns (published contents only ever grow).
            let pending = self.pending.lock();
            *self.published.write() = Arc::new(pending.clone());
        }
        self.published.read().clone()
    }
}

/// An immutable, cheaply cloneable view of one subset's columns.
///
/// Holding a snapshot pins the column memory; concurrent appends publish
/// new snapshots without disturbing existing ones.
#[derive(Debug, Clone)]
pub struct SubsetSnapshot {
    columns: Arc<Columns>,
}

impl SubsetSnapshot {
    /// The user-id column, in insertion order.
    #[must_use]
    pub fn ids(&self) -> &[u64] {
        &self.columns.ids
    }

    /// The sketch-key column, aligned with [`SubsetSnapshot::ids`].
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        &self.columns.keys
    }

    /// Number of records in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the snapshot holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.ids.is_empty()
    }

    /// Row-oriented iteration for code that wants records; the columns
    /// themselves are the primary interface.
    pub fn records(&self) -> impl Iterator<Item = SketchRecord> + '_ {
        self.columns
            .ids
            .iter()
            .zip(&self.columns.keys)
            .map(|(&id, &key)| SketchRecord {
                id: UserId(id),
                sketch: Sketch { key },
            })
    }
}

/// A database of published sketches, grouped by sketched subset.
#[derive(Debug, Default)]
pub struct SketchDb {
    shards: RwLock<HashMap<BitSubset, Arc<Shard>>>,
}

impl SketchDb {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, subset: &BitSubset) -> Option<Arc<Shard>> {
        self.shards.read().get(subset).cloned()
    }

    fn shard_or_insert(&self, subset: BitSubset) -> Arc<Shard> {
        if let Some(shard) = self.shard(&subset) {
            return shard;
        }
        Arc::clone(self.shards.write().entry(subset).or_default())
    }

    /// Records a published sketch for `(id, subset)`.
    pub fn insert(&self, subset: BitSubset, id: UserId, sketch: Sketch) {
        self.shard_or_insert(subset).append(id, sketch);
    }

    /// Records many sketches for the same subset at once, appending
    /// directly into the subset's columns.
    pub fn insert_batch(&self, subset: BitSubset, records: impl IntoIterator<Item = SketchRecord>) {
        self.shard_or_insert(subset).append_batch(records);
    }

    /// Appends pre-built columns to a subset's shard without going
    /// through per-record pushes — the restore path for snapshot files,
    /// which store each shard as exactly these two columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have different lengths (a corrupt snapshot
    /// must not silently misalign ids and keys).
    pub fn insert_columns(&self, subset: BitSubset, ids: Vec<u64>, keys: Vec<u64>) {
        assert_eq!(
            ids.len(),
            keys.len(),
            "id and key columns must be the same length"
        );
        let shard = self.shard_or_insert(subset);
        let mut pending = shard.pending.lock();
        if pending.len() == 0 {
            pending.ids = ids;
            pending.keys = keys;
        } else {
            pending.ids.extend_from_slice(&ids);
            pending.keys.extend_from_slice(&keys);
        }
        drop(pending);
        // ord: release pairs with the AcqRel swap in `snapshot`
        shard.stale.store(true, Ordering::Release);
    }

    /// Rebuilds a database from per-subset columns (e.g. a decoded
    /// snapshot file).
    ///
    /// # Panics
    ///
    /// As [`SketchDb::insert_columns`] on misaligned columns.
    #[must_use]
    pub fn from_columns(shards: impl IntoIterator<Item = (BitSubset, Vec<u64>, Vec<u64>)>) -> Self {
        let db = Self::new();
        for (subset, ids, keys) in shards {
            db.insert_columns(subset, ids, keys);
        }
        db
    }

    /// Returns a columnar snapshot of the records for `subset`.
    ///
    /// This is the read path of Algorithm 2: an `Arc` clone when the
    /// shard is unchanged since the previous snapshot, one column
    /// republish right after writes.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSubset`] if nothing was published for `subset`.
    pub fn snapshot(&self, subset: &BitSubset) -> Result<SubsetSnapshot, Error> {
        self.shard(subset)
            .map(|shard| SubsetSnapshot {
                columns: shard.snapshot(),
            })
            .ok_or_else(|| Error::UnknownSubset {
                subset: format!("{subset:?}"),
            })
    }

    /// Returns a row-oriented copy of the records for `subset`.
    ///
    /// Compatibility/inspection helper: this materializes a fresh `Vec`
    /// on every call. Query paths use [`SketchDb::snapshot`] instead.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSubset`] if nothing was published for `subset`.
    pub fn records(&self, subset: &BitSubset) -> Result<Vec<SketchRecord>, Error> {
        Ok(self.snapshot(subset)?.records().collect())
    }

    /// Number of sketches recorded for `subset` (0 if unknown).
    #[must_use]
    pub fn count(&self, subset: &BitSubset) -> usize {
        self.shard(subset).map_or(0, |shard| shard.len())
    }

    /// All subsets with at least one shard, in unspecified order.
    #[must_use]
    pub fn subsets(&self) -> Vec<BitSubset> {
        self.shards.read().keys().cloned().collect()
    }

    /// Total number of records across all subsets.
    #[must_use]
    pub fn total_records(&self) -> usize {
        self.shards.read().values().map(|shard| shard.len()).sum()
    }

    /// Whether the database holds no shards at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset(positions: &[u32]) -> BitSubset {
        BitSubset::new(positions.to_vec()).unwrap()
    }

    #[test]
    fn insert_and_retrieve() {
        let db = SketchDb::new();
        let b = subset(&[0, 1]);
        db.insert(b.clone(), UserId(1), Sketch { key: 3 });
        db.insert(b.clone(), UserId(2), Sketch { key: 5 });
        let records = db.records(&b).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, UserId(1));
        assert_eq!(records[1].sketch.key, 5);
    }

    #[test]
    fn unknown_subset_is_an_error() {
        let db = SketchDb::new();
        assert!(matches!(
            db.records(&subset(&[7])),
            Err(Error::UnknownSubset { .. })
        ));
        assert!(matches!(
            db.snapshot(&subset(&[7])),
            Err(Error::UnknownSubset { .. })
        ));
        assert_eq!(db.count(&subset(&[7])), 0);
    }

    #[test]
    fn batch_insert_and_counts() {
        let db = SketchDb::new();
        let b = subset(&[2]);
        db.insert_batch(
            b.clone(),
            (0..10).map(|i| SketchRecord {
                id: UserId(i),
                sketch: Sketch { key: i },
            }),
        );
        assert_eq!(db.count(&b), 10);
        assert_eq!(db.total_records(), 10);
        assert!(!db.is_empty());
    }

    #[test]
    fn from_columns_rebuilds_identically() {
        let db = SketchDb::new();
        let b = subset(&[0, 2]);
        for i in 0..20u64 {
            db.insert(b.clone(), UserId(i), Sketch { key: i % 7 });
        }
        let snap = db.snapshot(&b).unwrap();
        let rebuilt =
            SketchDb::from_columns([(b.clone(), snap.ids().to_vec(), snap.keys().to_vec())]);
        let rsnap = rebuilt.snapshot(&b).unwrap();
        assert_eq!(rsnap.ids(), snap.ids());
        assert_eq!(rsnap.keys(), snap.keys());
        // Restored shards keep accepting appends.
        rebuilt.insert(b.clone(), UserId(99), Sketch { key: 1 });
        assert_eq!(rebuilt.count(&b), 21);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn misaligned_columns_panic() {
        let db = SketchDb::new();
        db.insert_columns(subset(&[0]), vec![1, 2], vec![3]);
    }

    #[test]
    fn subsets_lists_all_keys() {
        let db = SketchDb::new();
        db.insert(subset(&[0]), UserId(0), Sketch { key: 0 });
        db.insert(subset(&[1]), UserId(0), Sketch { key: 0 });
        let mut subs = db.subsets();
        subs.sort();
        assert_eq!(subs, vec![subset(&[0]), subset(&[1])]);
    }

    #[test]
    fn snapshot_exposes_columns_in_insertion_order() {
        let db = SketchDb::new();
        let b = subset(&[0]);
        for i in 0..5u64 {
            db.insert(b.clone(), UserId(10 + i), Sketch { key: i * 2 });
        }
        let snap = db.snapshot(&b).unwrap();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.ids(), &[10, 11, 12, 13, 14]);
        assert_eq!(snap.keys(), &[0, 2, 4, 6, 8]);
        let rows: Vec<SketchRecord> = snap.records().collect();
        assert_eq!(rows[3].id, UserId(13));
        assert_eq!(rows[3].sketch.key, 6);
    }

    #[test]
    fn unchanged_shard_snapshots_share_columns() {
        let db = SketchDb::new();
        let b = subset(&[0]);
        db.insert(b.clone(), UserId(1), Sketch { key: 1 });
        let a = db.snapshot(&b).unwrap();
        let c = db.snapshot(&b).unwrap();
        // Same Arc: no copying happened for the second snapshot.
        assert!(Arc::ptr_eq(&a.columns, &c.columns));
    }

    #[test]
    fn snapshots_are_stable_under_later_writes() {
        let db = SketchDb::new();
        let b = subset(&[0]);
        db.insert(b.clone(), UserId(1), Sketch { key: 1 });
        let before = db.snapshot(&b).unwrap();
        db.insert(b.clone(), UserId(2), Sketch { key: 2 });
        let after = db.snapshot(&b).unwrap();
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 2);
        assert_eq!(before.ids(), &[1]);
        assert_eq!(after.ids(), &[1, 2]);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let db = Arc::new(SketchDb::new());
        let b = subset(&[0]);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        db.insert(b.clone(), UserId(t * 1000 + i), Sketch { key: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.count(&b), 800);
        assert_eq!(db.snapshot(&b).unwrap().len(), 800);
    }

    #[test]
    fn concurrent_reads_during_writes() {
        let db = Arc::new(SketchDb::new());
        let b = subset(&[3]);
        db.insert(b.clone(), UserId(0), Sketch { key: 0 });
        let writer = {
            let db = Arc::clone(&db);
            let b = b.clone();
            std::thread::spawn(move || {
                for i in 1..2000u64 {
                    db.insert(b.clone(), UserId(i), Sketch { key: i % 16 });
                }
            })
        };
        // Readers observe monotonically growing, internally consistent
        // snapshots while the writer runs.
        let mut last = 0;
        for _ in 0..200 {
            let snap = db.snapshot(&b).unwrap();
            assert_eq!(snap.ids().len(), snap.keys().len());
            assert!(snap.len() >= last);
            last = snap.len();
        }
        writer.join().unwrap();
        assert_eq!(db.snapshot(&b).unwrap().len(), 2000);
    }
}
