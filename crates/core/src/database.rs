//! The analyst-side collection of published sketches.
//!
//! Once users publish sketches they become public; the analyst aggregates
//! them per attribute subset. [`SketchDb`] is that aggregation: a map from
//! [`BitSubset`] to the list of `(user, sketch)` records. It is internally
//! synchronized (`parking_lot::RwLock`) so populations can publish from
//! multiple threads in the experiment harness.

use crate::params::Error;
use crate::profile::{BitSubset, UserId};
use crate::sketcher::Sketch;
use parking_lot::RwLock;
use std::collections::HashMap;

/// One published record: a user and the sketch they released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchRecord {
    /// The publishing user.
    pub id: UserId,
    /// The published sketch.
    pub sketch: Sketch,
}

/// A database of published sketches, grouped by sketched subset.
#[derive(Debug, Default)]
pub struct SketchDb {
    inner: RwLock<HashMap<BitSubset, Vec<SketchRecord>>>,
}

impl SketchDb {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a published sketch for `(id, subset)`.
    pub fn insert(&self, subset: BitSubset, id: UserId, sketch: Sketch) {
        self.inner
            .write()
            .entry(subset)
            .or_default()
            .push(SketchRecord { id, sketch });
    }

    /// Records many sketches for the same subset at once.
    pub fn insert_batch(&self, subset: BitSubset, records: impl IntoIterator<Item = SketchRecord>) {
        self.inner
            .write()
            .entry(subset)
            .or_default()
            .extend(records);
    }

    /// Returns a copy of the records for `subset`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSubset`] if nothing was published for `subset`.
    pub fn records(&self, subset: &BitSubset) -> Result<Vec<SketchRecord>, Error> {
        self.inner
            .read()
            .get(subset)
            .cloned()
            .ok_or_else(|| Error::UnknownSubset {
                subset: format!("{subset:?}"),
            })
    }

    /// Number of sketches recorded for `subset` (0 if unknown).
    #[must_use]
    pub fn count(&self, subset: &BitSubset) -> usize {
        self.inner.read().get(subset).map_or(0, Vec::len)
    }

    /// All subsets with at least one record, in unspecified order.
    #[must_use]
    pub fn subsets(&self) -> Vec<BitSubset> {
        self.inner.read().keys().cloned().collect()
    }

    /// Total number of records across all subsets.
    #[must_use]
    pub fn total_records(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// Whether the database holds no records at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset(positions: &[u32]) -> BitSubset {
        BitSubset::new(positions.to_vec()).unwrap()
    }

    #[test]
    fn insert_and_retrieve() {
        let db = SketchDb::new();
        let b = subset(&[0, 1]);
        db.insert(b.clone(), UserId(1), Sketch { key: 3 });
        db.insert(b.clone(), UserId(2), Sketch { key: 5 });
        let records = db.records(&b).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, UserId(1));
        assert_eq!(records[1].sketch.key, 5);
    }

    #[test]
    fn unknown_subset_is_an_error() {
        let db = SketchDb::new();
        assert!(matches!(
            db.records(&subset(&[7])),
            Err(Error::UnknownSubset { .. })
        ));
        assert_eq!(db.count(&subset(&[7])), 0);
    }

    #[test]
    fn batch_insert_and_counts() {
        let db = SketchDb::new();
        let b = subset(&[2]);
        db.insert_batch(
            b.clone(),
            (0..10).map(|i| SketchRecord {
                id: UserId(i),
                sketch: Sketch { key: i },
            }),
        );
        assert_eq!(db.count(&b), 10);
        assert_eq!(db.total_records(), 10);
        assert!(!db.is_empty());
    }

    #[test]
    fn subsets_lists_all_keys() {
        let db = SketchDb::new();
        db.insert(subset(&[0]), UserId(0), Sketch { key: 0 });
        db.insert(subset(&[1]), UserId(0), Sketch { key: 0 });
        let mut subs = db.subsets();
        subs.sort();
        assert_eq!(subs, vec![subset(&[0]), subset(&[1])]);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        use std::sync::Arc;
        let db = Arc::new(SketchDb::new());
        let b = subset(&[0]);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        db.insert(b.clone(), UserId(t * 1000 + i), Sketch { key: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.count(&b), 800);
    }
}
