//! `psketch` — deployment planning and demos from the command line.
//!
//! ```text
//! psketch plan --users 1000000 [--tau 1e-6] [--p 0.3] [--sketches 4]
//!              [--budget 2.0] [--delta 1e-9]
//!     Size a deployment: Lemma 3.1 sketch length, wire bytes, privacy
//!     cost (basic + advanced composition), Lemma 4.1 error bounds.
//!
//! psketch demo [--users 20000] [--p 0.3] [--seed 7]
//!     Run an end-to-end pipeline on a synthetic survey and print
//!     truth-vs-estimate for the paper's motivating query.
//!
//! psketch frontier [--users 20000]
//!     Print the privacy–utility table over p (bounds only; the measured
//!     version is experiment E19).
//! ```

mod args;
mod cluster;
mod families;
mod service;

use args::{Args, CliError};
use psketch_core::codec::bundle_size_bytes;
use psketch_core::composition::{epsilon_advanced, max_sketches_advanced, max_sketches_basic};
use psketch_core::theory::{epsilon_for, min_sketch_bits, privacy_ratio_bound, query_error_bound};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, SketchDb, SketchParams, Sketcher,
};
use psketch_data::SurveyModel;
use psketch_prf::{GlobalKey, Prg};
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `psketch help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    match args.positional().first().map(String::as_str) {
        Some("plan") => plan(&args),
        Some("demo") => demo(&args),
        Some("frontier") => frontier(&args),
        Some("serve") => service::serve(&args),
        Some("submit") => service::submit(&args),
        Some("query") => service::query(&args),
        Some("cluster") => cluster::cluster(&args),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(CliError(format!(
            "unknown command '{other}' (try plan, demo, frontier, serve, submit, query, \
             cluster, help)"
        ))),
    }
}

fn print_help() {
    println!("psketch — Privacy via Pseudorandom Sketches (Mishra & Sandler, PODS 2006)");
    println!();
    println!("commands:");
    println!("  plan      size a deployment (sketch bits, bytes, privacy, error bounds)");
    println!("            --users M [--tau 1e-6] [--p 0.3] [--sketches 1]");
    println!("            [--budget EPS --delta 1e-9]");
    println!("  demo      run an end-to-end synthetic-survey pipeline");
    println!("            [--users 20000] [--p 0.3] [--seed 7]");
    println!("  frontier  print the privacy-utility bound table over p [--users 20000]");
    println!("  serve     run the sketch-pool server");
    println!("            [--addr 127.0.0.1:7171] [--users 100000] [--p 0.3] [--width 2]");
    println!("            [--workers 8] [--wal DIR] [--compact-bytes N] [--shard i/N]");
    println!("            [--budget EPS] [--metrics-addr 127.0.0.1:9187] [--slow-query-ms N]");
    println!("            [--no-metrics]");
    println!("  submit    simulate user agents against a running server");
    println!("            [--addr …] [--users 1000] [--seed 1] [--id-base 0] [--batch 500]");
    println!("  query     ask a running server: conj --subset 0,1 --value 10 | dist");
    println!("            --subset 0,1 | mean --field 0:4 | interval --field 0:4");
    println!("            (--lt C | --le C | --range LO:HI) | dnf --clauses \"0=1;1,2=10\" |");
    println!("            tree --tree \"0?(2?1:0):1\" | moment --field 0:4 [--order 2] |");
    println!("            stats | ping   (all take [--addr …] [--timeout 10] [--json];");
    println!("            plan-backed kinds take --explain for a span waterfall)");
    println!("  cluster   sharded multi-node pool: serve --shards 3 [--wal-root DIR] |");
    println!("            submit | query conj/dist/mean/interval/dnf/tree/moment/ping |");
    println!("            status [--metrics] | trace NONCE   (submit/query/status/trace");
    println!("            take --map FILE or --addrs a,b,c; query kinds accept the same");
    println!("            family flags, --json, and --explain as `query`; query/status");
    println!("            accept [--slow-query-ms N])");
    println!("  help      this message");
}

fn plan(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["users", "tau", "p", "sketches", "budget", "delta"])?;
    let users: u64 = args.require("users")?;
    let tau: f64 = args.get_or("tau", 1e-6)?;
    let p: f64 = args.get_or("p", 0.3)?;
    let sketches: u32 = args.get_or("sketches", 1)?;
    if !(p > 0.0 && p < 0.5) {
        return Err(CliError(format!("--p {p} must be in (0, 1/2)")));
    }
    if !(tau > 0.0 && tau < 1.0) {
        return Err(CliError(format!("--tau {tau} must be in (0, 1)")));
    }
    if users == 0 || sketches == 0 {
        return Err(CliError("--users and --sketches must be positive".into()));
    }

    let bits = min_sketch_bits(users, tau, p);
    println!("deployment plan for M = {users}, tau = {tau:.1e}, p = {p}");
    println!();
    println!("  sketch length (Lemma 3.1) : {bits} bits");
    println!(
        "  wire cost per user        : {} bytes for {sketches} sketch(es)",
        bundle_size_bytes(bits, sketches as usize)
    );
    println!(
        "  privacy per sketch        : ratio {:.4}  (eps = {:.4})",
        privacy_ratio_bound(p),
        privacy_ratio_bound(p) - 1.0
    );
    println!(
        "  privacy for {sketches} sketch(es)  : eps = {:.4}  (Cor 3.4)",
        epsilon_for(p, sketches)
    );
    for (label, delta) in [("95%", 0.05), ("99.9%", 1e-3)] {
        println!(
            "  query error at {label:>5} conf : +/- {:.4}  (Lemma 4.1, any width)",
            query_error_bound(users, p, delta)
        );
    }
    if let Some(budget) = optional_f64(args, "budget")? {
        let delta: f64 = args.get_or("delta", 1e-9)?;
        if budget <= 0.0 || !(delta > 0.0 && delta < 1.0) {
            return Err(CliError("--budget must be > 0 and --delta in (0,1)".into()));
        }
        println!();
        println!("  with total budget eps = {budget} :");
        println!(
            "    basic composition     : up to {} sketches",
            max_sketches_basic(p, budget)
        );
        let adv = max_sketches_advanced(p, budget, delta);
        println!(
            "    advanced (delta={delta:.0e}) : up to {adv} sketches (achieved eps {:.4})",
            if adv > 0 {
                epsilon_advanced(p, adv, delta)
            } else {
                f64::NAN
            }
        );
    }
    Ok(())
}

fn optional_f64(args: &Args, name: &str) -> Result<Option<f64>, CliError> {
    match args.get_or::<f64>(name, f64::NAN) {
        Ok(v) if v.is_nan() => Ok(None),
        Ok(v) => Ok(Some(v)),
        Err(e) => Err(e),
    }
}

fn demo(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["users", "p", "seed"])?;
    let users: usize = args.get_or("users", 20_000)?;
    let p: f64 = args.get_or("p", 0.3)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(seed))
        .map_err(|e| CliError(e.to_string()))?;
    let mut rng = Prg::seed_from_u64(seed);
    let pop = SurveyModel::epidemiology().generate(users, &mut rng);
    let subset = BitSubset::new(vec![0, 1]).expect("static subset");
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let failures = pop
        .publish(&sketcher, &subset, &db, &mut rng)
        .map_err(|e| CliError(e.to_string()))?;
    let value = BitString::from_bits(&[true, false]);
    let query = ConjunctiveQuery::new(subset.clone(), value.clone())
        .map_err(|e| CliError(e.to_string()))?;
    let est = ConjunctiveEstimator::new(params)
        .estimate(&db, &query)
        .map_err(|e| CliError(e.to_string()))?;
    let truth = pop.true_fraction(&subset, &value);
    println!("demo: {users} users, p = {p}, 10-bit sketches ({failures} failures)");
    println!("query: HIV+ AND NOT AIDS  (the paper's motivating conjunction)");
    println!("  truth     : {truth:.5}");
    println!("  estimate  : {:.5}", est.fraction);
    println!("  95% band  : +/- {:.5}", est.half_width(0.05));
    Ok(())
}

fn frontier(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["users"])?;
    let users: u64 = args.get_or("users", 20_000)?;
    println!("privacy-utility frontier at M = {users} (bounds; E19 measures it)");
    println!(
        "{:>6} {:>16} {:>18}",
        "p", "eps per sketch", "error bound (95%)"
    );
    for &p in &[0.05f64, 0.15, 0.25, 0.35, 0.45, 0.49] {
        println!(
            "{p:>6.2} {:>16.3} {:>18.4}",
            privacy_ratio_bound(p) - 1.0,
            query_error_bound(users, p, 0.05)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(tokens: &[&str]) -> Result<(), CliError> {
        run(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_empty_succeed() {
        call(&[]).unwrap();
        call(&["help"]).unwrap();
    }

    #[test]
    fn plan_happy_path_and_validation() {
        call(&["plan", "--users", "1000000"]).unwrap();
        call(&[
            "plan", "--users", "1000000", "--budget", "2.0", "--delta", "1e-9",
        ])
        .unwrap();
        assert!(call(&["plan"]).is_err()); // missing --users
        assert!(call(&["plan", "--users", "100", "--p", "0.7"]).is_err());
        assert!(call(&["plan", "--users", "100", "--tau", "2.0"]).is_err());
        assert!(call(&["plan", "--users", "0"]).is_err());
    }

    #[test]
    fn demo_runs_small() {
        call(&["demo", "--users", "2000", "--seed", "3"]).unwrap();
        assert!(call(&["demo", "--users", "abc"]).is_err());
    }

    #[test]
    fn frontier_runs() {
        call(&["frontier", "--users", "5000"]).unwrap();
    }

    #[test]
    fn unknown_command_and_flag_rejected() {
        assert!(call(&["bogus"]).is_err());
        assert!(call(&["plan", "--users", "10", "--bogus", "1"]).is_err());
    }
}
