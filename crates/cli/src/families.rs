//! Shared query-family plumbing for the `query` and `cluster query`
//! subcommands: flag parsing into [`TermPlan`]s and machine-readable
//! `--json` rendering.
//!
//! Every family compiles to the same plan IR, so one parser serves the
//! single-server path (`Client::execute_plan`) and the sharded path
//! (`Router::execute_plan`) identically.

use crate::args::{Args, CliError};
use psketch_cluster::Coverage;
use psketch_core::{ConjunctiveQuery, Estimate, IntField};
use psketch_queries::{
    dnf_plan, less_equal_plan, less_than_plan, mean_plan, moment_plan, range_plan, DecisionTree,
    LinearAnswer, TermPlan,
};

/// The plan-backed query kinds `query`/`cluster query` expose beyond
/// the direct `conj`/`dist` paths.
pub const PLAN_KINDS: &[&str] = &["mean", "interval", "dnf", "tree", "moment"];

/// The flags one plan-backed kind may consume (for `reject_unknown`):
/// each kind rejects the other families' flags instead of silently
/// ignoring them — a `--le` typoed onto a `mean` query must error, not
/// answer the wrong question.
#[must_use]
pub fn kind_flags(kind: &str) -> &'static [&'static str] {
    match kind {
        "mean" => &["field", "json", "explain"],
        "moment" => &["field", "order", "json", "explain"],
        "interval" => &["field", "lt", "le", "range", "json", "explain"],
        "dnf" => &["clauses", "json", "explain"],
        "tree" => &["tree", "json", "explain"],
        _ => &[],
    }
}

/// Parses `--field OFFSET:WIDTH` into an integer field.
///
/// # Errors
///
/// Malformed literals.
pub fn parse_field(raw: &str) -> Result<IntField, CliError> {
    let err = || {
        CliError(format!(
            "--field '{raw}' must look like OFFSET:WIDTH, e.g. 0:4"
        ))
    };
    let (offset, width) = raw.split_once(':').ok_or_else(err)?;
    let offset: u32 = offset.trim().parse().map_err(|_| err())?;
    let width: u32 = width.trim().parse().map_err(|_| err())?;
    if width == 0 || width > 20 {
        return Err(CliError(format!("--field width {width} must be in 1..=20")));
    }
    Ok(IntField::new(offset, width))
}

/// Parses `--clauses "0=1;1,2=10"`: semicolon-separated clauses, each
/// `positions=bits` with positions comma-separated and bits aligned to
/// them.
///
/// # Errors
///
/// Malformed literals or position/bit width mismatches.
pub fn parse_clauses(raw: &str) -> Result<Vec<ConjunctiveQuery>, CliError> {
    raw.split(';')
        .map(|clause| {
            let clause = clause.trim();
            let (positions, bits) = clause.split_once('=').ok_or_else(|| {
                CliError(format!(
                    "--clauses: clause '{clause}' must look like POS,POS=BITS, e.g. 0,2=10"
                ))
            })?;
            let subset = crate::service::parse_subset(positions)?;
            let value = crate::service::parse_value(bits.trim(), subset.len())?;
            ConjunctiveQuery::new(subset, value).map_err(|e| CliError(format!("--clauses: {e}")))
        })
        .collect()
}

/// Parses `--tree "0?(2?1:0):(1?0:1)"`: a decision tree where `ATTR?T:T`
/// splits on attribute `ATTR` (the first branch is taken when the
/// attribute is **1**), parentheses group subtrees, and `1`/`0` are
/// accept/reject leaves.
///
/// # Errors
///
/// Malformed literals.
pub fn parse_tree(raw: &str) -> Result<DecisionTree, CliError> {
    let bytes: Vec<char> = raw.chars().filter(|c| !c.is_whitespace()).collect();
    let (tree, used) = parse_tree_inner(&bytes, 0)?;
    if used != bytes.len() {
        return Err(CliError(format!(
            "--tree: trailing characters after position {used}"
        )));
    }
    Ok(tree)
}

fn parse_tree_inner(chars: &[char], at: usize) -> Result<(DecisionTree, usize), CliError> {
    let err = |what: &str, at: usize| {
        CliError(format!(
            "--tree: {what} at position {at} (grammar: TREE = 0 | 1 | ATTR?TREE:TREE | (TREE))"
        ))
    };
    match chars.get(at) {
        None => Err(err("unexpected end", at)),
        Some('(') => {
            let (tree, next) = parse_tree_inner(chars, at + 1)?;
            if chars.get(next) != Some(&')') {
                return Err(err("expected ')'", next));
            }
            Ok((tree, next + 1))
        }
        Some(c) if c.is_ascii_digit() => {
            // Read the whole number, then decide: a bare 0/1 not
            // followed by '?' is a leaf; anything else is a split.
            let mut end = at;
            while chars.get(end).is_some_and(char::is_ascii_digit) {
                end += 1;
            }
            let number: u32 = chars[at..end]
                .iter()
                .collect::<String>()
                .parse()
                .map_err(|_| err("attribute overflows u32", at))?;
            if chars.get(end) != Some(&'?') {
                return match number {
                    0 => Ok((DecisionTree::Leaf(false), end)),
                    1 => Ok((DecisionTree::Leaf(true), end)),
                    _ => Err(err("leaf must be 0 or 1", at)),
                };
            }
            let (if_one, next) = parse_tree_inner(chars, end + 1)?;
            if chars.get(next) != Some(&':') {
                return Err(err("expected ':'", next));
            }
            let (if_zero, next) = parse_tree_inner(chars, next + 1)?;
            Ok((DecisionTree::split(number, if_zero, if_one), next))
        }
        Some(_) => Err(err("unexpected character", at)),
    }
}

/// Builds the plan for one plan-backed query kind from its flags.
///
/// # Errors
///
/// Unknown kinds, missing or malformed flags.
pub fn family_plan(kind: &str, args: &Args) -> Result<TermPlan, CliError> {
    match kind {
        "mean" => Ok(mean_plan(&parse_field(&args.require::<String>("field")?)?)),
        "moment" => {
            let field = parse_field(&args.require::<String>("field")?)?;
            let order: u32 = args.get_or("order", 2)?;
            if !(1..=4).contains(&order) {
                return Err(CliError(format!("--order {order} must be in 1..=4")));
            }
            Ok(moment_plan(&field, order))
        }
        "interval" => {
            let field = parse_field(&args.require::<String>("field")?)?;
            let lt: String = args.get_or("lt", String::new())?;
            let le: String = args.get_or("le", String::new())?;
            let range: String = args.get_or("range", String::new())?;
            let chosen = [!lt.is_empty(), !le.is_empty(), !range.is_empty()];
            if chosen.iter().filter(|&&c| c).count() != 1 {
                return Err(CliError(
                    "interval needs exactly one of --lt C, --le C, --range LO:HI".into(),
                ));
            }
            let bound = |raw: &str| -> Result<u64, CliError> {
                let c: u64 = raw
                    .parse()
                    .map_err(|_| CliError(format!("cannot parse threshold '{raw}'")))?;
                if c > field.max_value() {
                    return Err(CliError(format!(
                        "threshold {c} exceeds the field's maximum {}",
                        field.max_value()
                    )));
                }
                Ok(c)
            };
            if !lt.is_empty() {
                Ok(less_than_plan(&field, bound(&lt)?))
            } else if !le.is_empty() {
                Ok(less_equal_plan(&field, bound(&le)?))
            } else {
                let (lo, hi) = range
                    .split_once(':')
                    .ok_or_else(|| CliError(format!("--range '{range}' must look like LO:HI")))?;
                let (lo, hi) = (bound(lo.trim())?, bound(hi.trim())?);
                if lo > hi {
                    return Err(CliError(format!("--range {lo}:{hi} is empty")));
                }
                Ok(range_plan(&field, lo, hi))
            }
        }
        "dnf" => {
            let clauses = parse_clauses(&args.require::<String>("clauses")?)?;
            if clauses.is_empty() || clauses.len() > psketch_queries::dnf::MAX_CLAUSES {
                return Err(CliError(format!(
                    "--clauses: need 1..={} clauses",
                    psketch_queries::dnf::MAX_CLAUSES
                )));
            }
            dnf_plan(&clauses).map_err(|e| CliError(e.to_string()))
        }
        "tree" => Ok(parse_tree(&args.require::<String>("tree")?)?.to_plan()),
        other => Err(CliError(format!(
            "unknown query kind '{other}' (plan kinds: {})",
            PLAN_KINDS.join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------
// Machine-readable output (`--json`).
// ---------------------------------------------------------------------

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (floats here are always finite;
/// estimates come from positive-population inversions).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The plan outputs as a JSON array.
pub fn json_outputs(plan: &TermPlan, answers: &[LinearAnswer]) -> String {
    let entries: Vec<String> = plan
        .outputs()
        .iter()
        .zip(answers)
        .map(|(out, a)| {
            format!(
                "{{\"label\":\"{}\",\"value\":{},\"queries_used\":{},\"min_sample_size\":{}}}",
                json_escape(&out.label),
                json_f64(a.value),
                a.queries_used,
                a.min_sample_size
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// One estimate as a JSON object.
pub fn json_estimate(e: &Estimate) -> String {
    format!(
        "{{\"fraction\":{},\"raw\":{},\"sample_size\":{},\"half_width_95\":{}}}",
        json_f64(e.fraction),
        json_f64(e.raw),
        e.sample_size,
        json_f64(e.half_width(0.05))
    )
}

/// A cluster answer's coverage as a JSON object, including the
/// degraded-mode fields (missing shards, errors, known missing
/// fraction).
pub fn json_coverage(coverage: &Coverage) -> String {
    let responding: Vec<String> = coverage.responding.iter().map(u32::to_string).collect();
    let missing: Vec<String> = coverage
        .missing
        .iter()
        .map(|o| {
            format!(
                "{{\"shard\":{},\"error\":\"{}\"}}",
                o.shard,
                json_escape(&o.error)
            )
        })
        .collect();
    let missing_fraction = coverage
        .missing_fraction()
        .map_or_else(|| "null".to_string(), json_f64);
    format!(
        "{{\"total_shards\":{},\"responding\":[{}],\"missing\":[{}],\"population\":{},\
         \"degraded\":{},\"missing_fraction\":{}}}",
        coverage.total_shards,
        responding.join(","),
        missing.join(","),
        coverage.population,
        !coverage.is_complete(),
        missing_fraction
    )
}

/// A whole single-node plan answer as one JSON document.
pub fn json_plan_document(kind: &str, plan: &TermPlan, answers: &[LinearAnswer]) -> String {
    format!(
        "{{\"query\":\"{}\",\"description\":\"{}\",\"plan_terms\":{},\"outputs\":{}}}",
        json_escape(kind),
        json_escape(plan.description()),
        plan.cost(),
        json_outputs(plan, answers)
    )
}

/// A whole cluster plan answer as one JSON document (adds coverage).
pub fn json_cluster_plan_document(
    kind: &str,
    plan: &TermPlan,
    answers: &[LinearAnswer],
    coverage: &Coverage,
) -> String {
    format!(
        "{{\"query\":\"{}\",\"description\":\"{}\",\"plan_terms\":{},\"outputs\":{},\
         \"coverage\":{}}}",
        json_escape(kind),
        json_escape(plan.description()),
        plan.cost(),
        json_outputs(plan, answers),
        json_coverage(coverage)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn field_parsing() {
        let f = parse_field("2:4").unwrap();
        assert_eq!(f.offset(), 2);
        assert_eq!(f.width(), 4);
        assert!(parse_field("2").is_err());
        assert!(parse_field("a:4").is_err());
        assert!(parse_field("0:0").is_err());
        assert!(parse_field("0:40").is_err());
    }

    #[test]
    fn clause_parsing() {
        let clauses = parse_clauses("0=1; 1,2=10").unwrap();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[1].subset().positions(), &[1, 2]);
        assert!(clauses[1].value().get(0));
        assert!(!clauses[1].value().get(1));
        assert!(parse_clauses("0").is_err());
        assert!(parse_clauses("0=11").is_err()); // width mismatch
    }

    #[test]
    fn tree_parsing() {
        let t = parse_tree("0?(2?1:0):(1?0:1)").unwrap();
        assert_eq!(t.depth(), 2);
        // x0=1, x2=1 → accept (first branch is the attribute-1 side).
        assert!(t.evaluate(&psketch_core::Profile::from_bits(&[true, false, true])));
        assert!(!t.evaluate(&psketch_core::Profile::from_bits(&[true, false, false])));
        // x0=0, x1=1 → reject.
        assert!(!t.evaluate(&psketch_core::Profile::from_bits(&[false, true, false])));
        assert!(parse_tree("0?1").is_err());
        assert!(parse_tree("2").is_err());
        assert!(parse_tree("0?1:0garbage").is_err());
        assert!(parse_tree("(0?1:0").is_err());
    }

    #[test]
    fn family_plans_compile() {
        let plan = family_plan("mean", &parse(&["--field", "0:3"])).unwrap();
        assert_eq!(plan.cost(), 3);
        let plan = family_plan("interval", &parse(&["--field", "0:3", "--le", "5"])).unwrap();
        assert!(plan.cost() >= 1);
        let plan = family_plan("interval", &parse(&["--field", "0:3", "--range", "1:5"])).unwrap();
        assert!(plan.cost() >= 1);
        let plan = family_plan("dnf", &parse(&["--clauses", "0=1;1=1"])).unwrap();
        assert_eq!(plan.cost(), 3);
        let plan = family_plan("tree", &parse(&["--tree", "0?1:0"])).unwrap();
        assert_eq!(plan.cost(), 1);
        let plan = family_plan("moment", &parse(&["--field", "0:3", "--order", "2"])).unwrap();
        assert_eq!(plan.cost(), 3 + 3);
        assert!(family_plan("interval", &parse(&["--field", "0:3"])).is_err());
        assert!(family_plan(
            "interval",
            &parse(&["--field", "0:3", "--lt", "2", "--le", "3"])
        )
        .is_err());
        assert!(family_plan("interval", &parse(&["--field", "0:2", "--lt", "9"])).is_err());
        assert!(family_plan("moment", &parse(&["--field", "0:3", "--order", "7"])).is_err());
        assert!(family_plan("bogus", &parse(&[])).is_err());
    }

    #[test]
    fn kind_flags_are_disjoint_per_family() {
        assert!(kind_flags("mean").contains(&"field"));
        assert!(!kind_flags("mean").contains(&"le"));
        assert!(!kind_flags("dnf").contains(&"field"));
        assert!(kind_flags("bogus").is_empty());
    }

    #[test]
    fn json_rendering_is_valid_enough() {
        let plan = family_plan("mean", &parse(&["--field", "0:2"])).unwrap();
        let answers = vec![psketch_queries::LinearAnswer {
            value: 1.5,
            queries_used: 2,
            min_sample_size: 100,
        }];
        let doc = json_plan_document("mean", &plan, &answers);
        assert!(doc.contains("\"value\":1.5"));
        assert!(doc.contains("\"plan_terms\":2"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
