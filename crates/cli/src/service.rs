//! The `serve`, `submit` and `query` subcommands: the CLI face of the
//! networked sketch-pool service.
//!
//! ```text
//! psketch serve  [--addr 127.0.0.1:7171] [--db-id 1] [--users 100000]
//!                [--tau 1e-6] [--p 0.3] [--width 2] [--key-seed 7]
//!                [--workers 8] [--wal DIR] [--compact-bytes 67108864]
//!                [--lanes 0]
//!     Publish an announcement and serve the pool over TCP. With --wal,
//!     every accepted batch is fsync'd to DIR before it is acknowledged
//!     and the pool is recovered from DIR on restart.
//!
//! psketch submit [--addr …] [--users 1000] [--seed 1] [--id-base 0]
//!                [--batch 500] [--timeout 10]
//!     Simulate N user agents: fetch the announcement, sketch synthetic
//!     profiles with seeded randomness, submit in batches.
//!
//! psketch query conj  --subset 0,1 --value 10 [--addr …] [--timeout 10]
//! psketch query dist  --subset 0,1            [--addr …]
//! psketch query stats                         [--addr …]
//! psketch query ping                          [--addr …]
//!     Analyst queries against a running server.
//!
//! psketch query replay [--subset 0] [--value 1] [--analyst 0] [--addr …]
//!     Charge-once self-test: sends a nonce'd query, kills the socket
//!     before reading the answer, retries with the same nonce, and
//!     fails unless the server's ε-ledger advanced exactly once.
//! ```
//!
//! Every failure (unreachable server, bad flags, server-side error
//! frame) is reported on stderr with a non-zero exit code — these
//! commands are meant to be scripted.

use crate::args::{Args, CliError};
use psketch_core::{BitString, BitSubset, Profile, UserId};
use psketch_prf::{GlobalKey, Prg};
use psketch_protocol::{Announcement, AnnouncementBuilder, Submission, UserAgent};
use psketch_server::wal::WalConfig;
use psketch_server::{Client, Server, ServerConfig};
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// Default service address shared by all three subcommands.
const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn err(e: impl std::fmt::Display) -> CliError {
    CliError(e.to_string())
}

fn connect(args: &Args) -> Result<Client, CliError> {
    let addr: String = args.get_or("addr", DEFAULT_ADDR.to_string())?;
    let timeout: f64 = args.get_or("timeout", 10.0)?;
    if !timeout.is_finite() || timeout <= 0.0 {
        return Err(CliError(format!("--timeout {timeout} must be positive")));
    }
    Client::connect(addr.as_str(), Duration::from_secs_f64(timeout))
        .map_err(|e| CliError(format!("cannot reach server at {addr}: {e}")))
}

/// `psketch serve`: announce and serve until killed.
pub fn serve(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "addr",
        "db-id",
        "users",
        "tau",
        "p",
        "width",
        "key-seed",
        "workers",
        "wal",
        "compact-bytes",
        "shard",
        "budget",
        "lanes",
        "metrics-addr",
        "slow-query-ms",
        "no-metrics",
    ])?;
    let addr: String = args.get_or("addr", DEFAULT_ADDR.to_string())?;
    let announcement = build_announcement(args)?;
    let workers: usize = args.get_or("workers", 8)?;
    configure_lanes(args)?;
    let wal = match args.get_or("wal", String::new())? {
        dir if dir.is_empty() => None,
        dir => {
            let mut config = WalConfig::new(dir);
            config.compact_threshold_bytes =
                args.get_or("compact-bytes", config.compact_threshold_bytes)?;
            Some(config)
        }
    };
    let durable = wal.is_some();
    let shard = match args.get_or("shard", String::new())? {
        raw if raw.is_empty() => None,
        raw => Some(parse_shard(&raw)?),
    };
    let analyst_budget = match args.get_or("budget", f64::NAN)? {
        eps if eps.is_nan() => None,
        eps => Some(eps),
    };
    let (metrics_addr, slow_query_ms) = configure_observability(args)?;
    let metrics_display = metrics_addr.clone();

    let server = Server::start(
        addr.as_str(),
        announcement,
        ServerConfig {
            workers,
            wal,
            shard,
            analyst_budget,
            metrics_addr,
            slow_query_ms,
        },
    )
    .map_err(|e| CliError(format!("cannot serve on {addr}: {e}")))?;
    let ann = server.coordinator().announcement();
    println!(
        "announcement: db {} | p = {} | {} bits/sketch | {} subsets | eps = {:.4}/user",
        ann.database_id,
        ann.p,
        ann.sketch_bits,
        ann.subsets.len(),
        ann.epsilon_cost()
    );
    println!(
        "recovered: {} submissions, {} records",
        server.coordinator().stats().accepted,
        server.coordinator().stats().records
    );
    if let Some(identity) = shard {
        println!("shard: {identity}");
    }
    println!(
        "listening on {} ({} workers, {} PRF lanes, wal {})",
        server.local_addr(),
        workers.max(1),
        psketch_core::lane_width(),
        if durable { "on" } else { "off" }
    );
    if let Some(maddr) = &metrics_display {
        println!("metrics: http://{maddr}/metrics");
    }
    // Make the readiness lines visible to process supervisors
    // immediately (CI smoke tests wait for them).
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until the process is killed; the worker threads carry the
    // actual traffic.
    loop {
        std::thread::park();
    }
}

/// Applies `--lanes N` (0 = auto-probe the CPU, 1 = scalar reference
/// loop, 4/8 = that many interleaved SipHash streams per scan step).
/// Shared by `serve` and `cluster serve`; answers are bit-identical at
/// every width, so this is purely a throughput knob.
pub fn configure_lanes(args: &Args) -> Result<(), CliError> {
    let lanes: usize = args.get_or("lanes", 0)?;
    psketch_core::set_lane_width(lanes).map_err(|e| CliError(format!("--lanes: {e}")))
}

/// Applies the shared observability flags (`serve` and `cluster serve`):
/// `--no-metrics` turns metric recording off process-wide,
/// `--metrics-addr HOST:PORT` starts the Prometheus-text listener, and
/// `--slow-query-ms N` arms the slow-query log (0 = log every query).
/// Returns `(metrics_addr, slow_query_ms)` for [`ServerConfig`].
pub fn configure_observability(args: &Args) -> Result<(Option<String>, Option<u64>), CliError> {
    if args.get_or("no-metrics", false)? {
        psketch_obs::set_enabled(false);
    }
    let metrics_addr = match args.get_or("metrics-addr", String::new())? {
        addr if addr.is_empty() => None,
        addr => Some(addr),
    };
    let slow_query_ms = match args.get_or("slow-query-ms", -1i64)? {
        ms if ms < 0 => None,
        ms => Some(u64::try_from(ms).expect("non-negative by the guard above")),
    };
    Ok((metrics_addr, slow_query_ms))
}

/// Builds the announced sketching plan: every singleton attribute plus
/// the full `width`-bit subset (so both marginal and joint conjunctive
/// queries are answerable).
pub fn build_announcement(args: &Args) -> Result<Announcement, CliError> {
    let db_id: u64 = args.get_or("db-id", 1)?;
    let users: u64 = args.get_or("users", 100_000)?;
    let tau: f64 = args.get_or("tau", 1e-6)?;
    let p: f64 = args.get_or("p", 0.3)?;
    let width: u32 = args.get_or("width", 2)?;
    let key_seed: u64 = args.get_or("key-seed", 7)?;
    if !(p > 0.0 && p < 0.5) {
        return Err(CliError(format!("--p {p} must be in (0, 1/2)")));
    }
    if !(tau > 0.0 && tau < 1.0) {
        return Err(CliError(format!("--tau {tau} must be in (0, 1)")));
    }
    if users == 0 || width == 0 {
        return Err(CliError("--users and --width must be positive".into()));
    }
    if width > 16 {
        return Err(CliError(format!(
            "--width {width} too wide (joint subset capped at 16 bits)"
        )));
    }
    let mut builder = AnnouncementBuilder::new(db_id, p, users, tau)
        .global_key(*GlobalKey::from_seed(key_seed).as_bytes())
        .subsets((0..width).map(BitSubset::single));
    if width > 1 {
        builder = builder.subset(BitSubset::range(0, width));
    }
    builder.build().map_err(err)
}

/// The attribute width a sketching plan covers (highest announced
/// position + 1).
pub fn announced_width(ann: &Announcement) -> usize {
    ann.subsets
        .iter()
        .flat_map(|s| s.positions().iter().copied())
        .max()
        .map_or(1, |max| max as usize + 1)
}

/// Generates synthetic submissions for the given user-id range:
/// profile bit `j` is true w.p. `1/(j+2)`, so marginals differ across
/// attributes and queries have nontrivial answers. Shared by `submit`
/// and `cluster submit` so the two commands simulate the same
/// population.
pub fn synthetic_submissions(
    ann: &Announcement,
    width: usize,
    rng: &mut Prg,
    ids: std::ops::Range<u64>,
) -> Result<Vec<Submission>, CliError> {
    ids.map(|i| {
        let bits: Vec<bool> = (0..width)
            .map(|j| rng.random_bool(1.0 / (j as f64 + 2.0)))
            .collect();
        let mut agent = UserAgent::new(UserId(i), Profile::from_bits(&bits), ann.p, f64::MAX);
        agent.participate(ann, rng).map_err(err)
    })
    .collect()
}

/// `psketch submit`: simulate user agents against a live server.
pub fn submit(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["addr", "timeout", "users", "seed", "id-base", "batch"])?;
    let users: u64 = args.get_or("users", 1_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let id_base: u64 = args.get_or("id-base", 0)?;
    let batch: usize = args.get_or("batch", 500)?;
    if users == 0 || batch == 0 {
        return Err(CliError("--users and --batch must be positive".into()));
    }

    let mut client = connect(args)?;
    let ann = client.announcement().map_err(err)?;
    let width = announced_width(&ann);

    // Generate and submit one batch at a time: memory stays flat at the
    // batch size and the pipeline starts immediately, whatever --users
    // is.
    let mut rng = Prg::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut next = 0u64;
    while next < users {
        let chunk_end = (next + batch as u64).min(users);
        let submissions =
            synthetic_submissions(&ann, width, &mut rng, id_base + next..id_base + chunk_end)?;
        let ack = client.submit_batch(&submissions).map_err(err)?;
        accepted += ack.accepted;
        rejected += ack.rejected;
        next = chunk_end;
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "submitted {users} users in batches of {batch}: accepted {accepted}, \
         rejected {rejected} ({:.0} submissions/s)",
        accepted as f64 / secs.max(1e-9),
    );
    if rejected > 0 {
        return Err(CliError(format!(
            "{rejected} submissions rejected (duplicate ids? try --id-base)"
        )));
    }
    Ok(())
}

/// `psketch query <conj|dist|mean|interval|dnf|tree|moment|stats|ping>`:
/// analyst queries. The plan-backed kinds compile to a [`TermPlan`] and
/// execute server-side through the `Plan` frame; `--json` switches every
/// query kind to machine-readable output.
///
/// [`TermPlan`]: psketch_queries::TermPlan
pub fn query(args: &Args) -> Result<(), CliError> {
    let kind = args
        .positional()
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError(
                "usage: psketch query <conj|dist|mean|interval|dnf|tree|moment|stats|ping> …"
                    .into(),
            )
        })?;
    if crate::families::PLAN_KINDS.contains(&kind) {
        let mut known = vec!["addr", "timeout"];
        known.extend_from_slice(crate::families::kind_flags(kind));
        args.reject_unknown(&known)?;
        let plan = crate::families::family_plan(kind, args)?;
        let json: bool = args.get_or("json", false)?;
        let explain: bool = args.get_or("explain", false)?;
        if json && explain {
            return Err(CliError(
                "--explain prints a text waterfall; drop --json".into(),
            ));
        }
        let mut client = connect(args)?;
        let (answers, traced) = if explain {
            let nonce = psketch_server::next_nonce();
            let (answers, trace) = client.execute_plan_traced(nonce, &plan).map_err(err)?;
            (answers, Some((nonce, trace)))
        } else {
            (client.execute_plan(&plan).map_err(err)?, None)
        };
        if json {
            println!(
                "{}",
                crate::families::json_plan_document(kind, &plan, &answers)
            );
        } else {
            println!("{} ({} plan terms)", plan.description(), plan.cost());
            for (output, answer) in plan.outputs().iter().zip(&answers) {
                println!(
                    "  {}: {:.6} (terms {}, min n {})",
                    output.label, answer.value, answer.queries_used, answer.min_sample_size
                );
            }
        }
        if let Some((nonce, trace)) = traced {
            println!();
            match trace {
                Some(tree) => print!("{}", psketch_obs::render_waterfall(&tree)),
                None => println!("(server attached no trace — nonce replayed from cache?)"),
            }
            // The nonce line lets scripts fetch the same trace again
            // later (`query trace` server-side ring, `cluster trace`).
            println!("trace {}", psketch_obs::trace_hex(nonce));
        }
        return Ok(());
    }
    match kind {
        "conj" => {
            args.reject_unknown(&["addr", "timeout", "subset", "value", "json"])?;
            let subset = parse_subset(&args.require::<String>("subset")?)?;
            let value = parse_value(&args.require::<String>("value")?, subset.len())?;
            let json: bool = args.get_or("json", false)?;
            let mut client = connect(args)?;
            let est = client.conjunctive(subset, value).map_err(err)?;
            if json {
                println!(
                    "{{\"query\":\"conj\",\"estimate\":{}}}",
                    crate::families::json_estimate(&est)
                );
            } else {
                println!(
                    "estimate: {:.6} (raw {:.6}, n = {}, 95% +/- {:.6})",
                    est.fraction,
                    est.raw,
                    est.sample_size,
                    est.half_width(0.05)
                );
            }
        }
        "dist" => {
            args.reject_unknown(&["addr", "timeout", "subset", "json"])?;
            let subset = parse_subset(&args.require::<String>("subset")?)?;
            let width = subset.len();
            let json: bool = args.get_or("json", false)?;
            let mut client = connect(args)?;
            let dist = client.distribution(subset).map_err(err)?;
            if json {
                let cells: Vec<String> = dist
                    .iter()
                    .enumerate()
                    .map(|(v, est)| {
                        format!(
                            "{{\"value\":{v},\"estimate\":{}}}",
                            crate::families::json_estimate(est)
                        )
                    })
                    .collect();
                println!("{{\"query\":\"dist\",\"estimates\":[{}]}}", cells.join(","));
                return Ok(());
            }
            println!(
                "{:>width$}  {:>10}  {:>8}",
                "value",
                "estimate",
                "n",
                width = width.max(5)
            );
            for (v, est) in dist.iter().enumerate() {
                let bits: String = (0..width)
                    .map(|b| if (v >> b) & 1 == 1 { '1' } else { '0' })
                    .collect();
                println!(
                    "{bits:>w$}  {:>10.6}  {:>8}",
                    est.fraction,
                    est.sample_size,
                    w = width.max(5)
                );
            }
        }
        "stats" => {
            args.reject_unknown(&["addr", "timeout"])?;
            let mut client = connect(args)?;
            let stats = client.stats().map_err(err)?;
            println!(
                "accepted {}  duplicates {}  malformed {}  records {}",
                stats.accepted, stats.duplicates, stats.malformed, stats.records
            );
        }
        "ping" => {
            args.reject_unknown(&["addr", "timeout"])?;
            let mut client = connect(args)?;
            client.ping().map_err(err)?;
            println!("pong");
        }
        "replay" => return replay_check(args),
        other => {
            return Err(CliError(format!(
                "unknown query kind '{other}' (try conj, dist, mean, interval, dnf, tree, \
                 moment, stats, ping, replay)"
            )));
        }
    }
    Ok(())
}

/// `psketch query replay`: the charge-once self-test. Sends one nonce'd
/// conjunctive query and **kills the socket without reading the
/// response** (the transport failure that used to double-charge), then
/// retries the same nonce on a fresh connection and verifies through
/// server stats that the analyst's ε-ledger advanced exactly once.
/// Exits non-zero on a double charge — scriptable as a deployment
/// health check (the CI smoke job runs it after every release).
fn replay_check(args: &Args) -> Result<(), CliError> {
    use psketch_server::wire;
    args.reject_unknown(&["addr", "timeout", "subset", "value", "analyst"])?;
    let subset = parse_subset(&args.get_or("subset", "0".to_string())?)?;
    let value = parse_value(&args.get_or("value", "1".to_string())?, subset.len())?;
    let analyst: u64 = args.get_or("analyst", 0)?;
    let addr: String = args.get_or("addr", DEFAULT_ADDR.to_string())?;
    let timeout: f64 = args.get_or("timeout", 10.0)?;
    let timeout = Duration::from_secs_f64(timeout);
    let nonce = psketch_server::next_nonce();

    // Baseline ledger counters (the server may have served others).
    let mut observer = connect(args)?;
    let before = observer.server_stats().map_err(err)?;

    // Injected transport kill: handshake, send the nonce'd query, drop
    // the socket before the response can be read.
    {
        let mut raw = std::net::TcpStream::connect(addr.as_str())
            .map_err(|e| CliError(format!("cannot reach server at {addr}: {e}")))?;
        raw.set_read_timeout(Some(timeout)).map_err(err)?;
        wire::write_frame(&mut raw, &wire::Request::Hello { analyst }.encode()).map_err(err)?;
        let hello = wire::read_frame(&mut raw)
            .map_err(err)?
            .ok_or_else(|| CliError("server hung up during hello".into()))?;
        match wire::Response::decode(&hello).map_err(err)? {
            wire::Response::Hello { .. } => {}
            other => return Err(CliError(format!("unexpected hello response: {other:?}"))),
        }
        let req = wire::Request::Conjunctive {
            subset: subset.clone(),
            value: value.clone(),
            nonce,
            profile: false,
        };
        wire::write_frame(&mut raw, &req.encode()).map_err(err)?;
        // Dropped here without reading: the response dies on the wire.
    }

    // The retry a router would issue: same nonce, fresh connection. A
    // RETRY_PENDING answer means the killed socket's frame is still
    // being evaluated — retry until its cached answer is ready.
    let mut retry = connect(args)?;
    retry.hello(analyst).map_err(err)?;
    let est = loop {
        match retry.conjunctive_nonced(nonce, subset.clone(), value.clone()) {
            Err(psketch_server::ClientError::Server { code, .. })
                if code == wire::codes::RETRY_PENDING =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => break other.map_err(err)?,
        }
    };
    println!(
        "retried estimate: {:.6} (n = {})",
        est.fraction, est.sample_size
    );

    // Wait until the server has processed both conjunctive frames (the
    // killed socket's frame was in flight and races the retry), then
    // the ledger must have advanced by exactly one estimate.
    let conj_kind = 0x03u8;
    let mut after = retry.server_stats().map_err(err)?;
    for _ in 0..100 {
        if after.count_for(conj_kind) >= before.count_for(conj_kind) + 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        after = retry.server_stats().map_err(err)?;
    }
    let charged = after.budget.charged_terms - before.budget.charged_terms;
    let replays = after.budget.replays - before.budget.replays;
    println!(
        "replay check: ledger advanced by {charged} (replays {replays}, denials {})",
        after.budget.denials - before.budget.denials
    );
    if after.budget.charged_terms == 0 {
        println!("note: server runs without --budget; nonce dedup has no ledger to protect");
        return Ok(());
    }
    if charged != 1 {
        return Err(CliError(format!(
            "DOUBLE CHARGE: one logical query advanced the ledger by {charged}"
        )));
    }
    println!("charge-once verified: one logical query, one charge");
    Ok(())
}

/// Parses a shard identity literal `i/N` (e.g. `0/3`).
pub fn parse_shard(raw: &str) -> Result<psketch_protocol::ShardIdentity, CliError> {
    let err = || CliError(format!("--shard '{raw}' must look like i/N, e.g. 0/3"));
    let (id, count) = raw.split_once('/').ok_or_else(err)?;
    let identity = psketch_protocol::ShardIdentity {
        shard_id: id.trim().parse().map_err(|_| err())?,
        shard_count: count.trim().parse().map_err(|_| err())?,
    };
    if identity.shard_id >= identity.shard_count {
        return Err(CliError(format!(
            "--shard {identity}: shard id must be below the shard count"
        )));
    }
    Ok(identity)
}

/// Parses `0,1,4` into a subset.
pub fn parse_subset(raw: &str) -> Result<BitSubset, CliError> {
    let positions: Vec<u32> = raw
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map_err(|_| CliError(format!("--subset: cannot parse position '{tok}'")))
        })
        .collect::<Result<_, _>>()?;
    BitSubset::new(positions).map_err(|e| CliError(format!("--subset: {e}")))
}

/// Parses a bit literal like `10` (first character = first subset
/// position) into a value of the given width.
pub fn parse_value(raw: &str, width: usize) -> Result<BitString, CliError> {
    if raw.len() != width {
        return Err(CliError(format!(
            "--value '{raw}' has {} bits, subset has {width}",
            raw.len()
        )));
    }
    let bits: Vec<bool> = raw
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(CliError(format!("--value: '{other}' is not a bit"))),
        })
        .collect::<Result<_, _>>()?;
    Ok(BitString::from_bits(&bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn subset_and_value_parsing() {
        let s = parse_subset("0, 2,5").unwrap();
        assert_eq!(s.positions(), &[0, 2, 5]);
        assert!(parse_subset("0,x").is_err());
        assert!(parse_subset("0,0").is_err());
        let v = parse_value("101", 3).unwrap();
        assert!(v.get(0) && !v.get(1) && v.get(2));
        assert!(parse_value("10", 3).is_err());
        assert!(parse_value("1a1", 3).is_err());
    }

    #[test]
    fn connection_failures_are_errors_not_panics() {
        // Nothing listens on a fresh ephemeral port's address; connect
        // must fail fast with a message, not panic.
        let args = parse(&[
            "query",
            "stats",
            "--addr",
            "127.0.0.1:9",
            "--timeout",
            "0.2",
        ]);
        let e = query(&args).unwrap_err();
        assert!(e.0.contains("cannot reach server"), "{e}");
        let args = parse(&["submit", "--addr", "127.0.0.1:9", "--timeout", "0.2"]);
        assert!(submit(&args).is_err());
    }

    #[test]
    fn flag_validation() {
        assert!(query(&parse(&["query"])).is_err());
        assert!(query(&parse(&["query", "bogus"])).is_err());
        assert!(query(&parse(&["query", "conj", "--subset", "0,1"])).is_err()); // missing --value
        assert!(submit(&parse(&["submit", "--users", "0"])).is_err());
        assert!(submit(&parse(&["submit", "--timeout", "-1"])).is_err());
        assert!(serve(&parse(&["serve", "--p", "0.8"])).is_err());
        assert!(serve(&parse(&["serve", "--width", "0"])).is_err());
        assert!(serve(&parse(&["serve", "--width", "40"])).is_err());
        assert!(serve(&parse(&["serve", "--bogus", "1"])).is_err());
        assert!(serve(&parse(&["serve", "--lanes", "3"])).is_err());
        assert!(serve(&parse(&["serve", "--lanes", "-1"])).is_err());
    }

    #[test]
    fn lanes_flag_configures_the_prf_knob() {
        configure_lanes(&parse(&["serve", "--lanes", "4"])).unwrap();
        assert_eq!(psketch_core::lane_width(), 4);
        // Bad widths are CLI errors and leave the knob untouched.
        let e = configure_lanes(&parse(&["serve", "--lanes", "5"])).unwrap_err();
        assert!(e.0.contains("--lanes"), "{e}");
        assert_eq!(psketch_core::lane_width(), 4);
        // Back to auto-probe (the default when the flag is absent).
        configure_lanes(&parse(&["serve"])).unwrap();
        assert_eq!(psketch_core::lane_width(), psketch_core::probe_lane_width());
    }

    #[test]
    fn end_to_end_submit_and_query_through_the_cli_layer() {
        // Drive the real subcommand functions against an in-process
        // server (the CI smoke test does the same via the binary).
        let ann =
            build_announcement(&parse(&["serve", "--users", "5000", "--width", "2"])).unwrap();
        let server = Server::start("127.0.0.1:0", ann, ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        submit(&parse(&[
            "submit", "--addr", &addr, "--users", "400", "--batch", "100",
        ]))
        .unwrap();
        // Duplicate ids rejected → non-zero exit path.
        assert!(submit(&parse(&["submit", "--addr", &addr, "--users", "10"])).is_err());
        // Fresh ids fine.
        submit(&parse(&[
            "submit",
            "--addr",
            &addr,
            "--users",
            "10",
            "--id-base",
            "400",
        ]))
        .unwrap();
        query(&parse(&[
            "query", "conj", "--addr", &addr, "--subset", "0,1", "--value", "10",
        ]))
        .unwrap();
        query(&parse(&[
            "query", "dist", "--addr", &addr, "--subset", "0,1",
        ]))
        .unwrap();
        query(&parse(&["query", "stats", "--addr", &addr])).unwrap();
        query(&parse(&["query", "ping", "--addr", &addr])).unwrap();
        // Plan-backed families against the live server (width-2 pool:
        // singles {0}, {1} and the pair {0,1} are sketched, which covers
        // means, intervals, DNF and trees over those attributes).
        query(&parse(&[
            "query", "mean", "--addr", &addr, "--field", "0:2",
        ]))
        .unwrap();
        query(&parse(&[
            "query", "interval", "--addr", &addr, "--field", "0:2", "--le", "1",
        ]))
        .unwrap();
        query(&parse(&[
            "query",
            "dnf",
            "--addr",
            &addr,
            "--clauses",
            "0=1;1=1",
        ]))
        .unwrap();
        query(&parse(&[
            "query",
            "tree",
            "--addr",
            &addr,
            "--tree",
            "0?(1?1:0):0",
        ]))
        .unwrap();
        query(&parse(&[
            "query", "moment", "--addr", &addr, "--field", "0:2", "--order", "2",
        ]))
        .unwrap();
        // Machine-readable output flag parses and executes.
        query(&parse(&[
            "query", "mean", "--addr", &addr, "--field", "0:2", "--json",
        ]))
        .unwrap();
        query(&parse(&[
            "query", "conj", "--addr", &addr, "--subset", "0,1", "--value", "10", "--json",
        ]))
        .unwrap();
        // Unknown subset → error frame → CLI error (direct and plan paths).
        assert!(query(&parse(&[
            "query", "conj", "--addr", &addr, "--subset", "7", "--value", "1",
        ]))
        .is_err());
        assert!(query(&parse(&[
            "query", "mean", "--addr", &addr, "--field", "5:2",
        ]))
        .is_err());
        // A different family's flag on a plan kind is rejected, not
        // silently ignored.
        assert!(query(&parse(&[
            "query", "mean", "--addr", &addr, "--field", "0:2", "--le", "1",
        ]))
        .is_err());
        server.shutdown();
    }

    #[test]
    fn replay_self_test_passes_against_a_budgeted_server() {
        let ann =
            build_announcement(&parse(&["serve", "--users", "5000", "--width", "2"])).unwrap();
        let server = Server::start(
            "127.0.0.1:0",
            ann,
            ServerConfig {
                analyst_budget: Some(100.0),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        submit(&parse(&[
            "submit", "--addr", &addr, "--users", "200", "--batch", "100",
        ]))
        .unwrap();
        query(&parse(&[
            "query",
            "replay",
            "--addr",
            &addr,
            "--subset",
            "0,1",
            "--value",
            "10",
            "--analyst",
            "3",
        ]))
        .unwrap();
        server.shutdown();
    }
}
