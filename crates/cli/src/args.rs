//! Minimal dependency-free argument parsing for the `psketch` CLI.
//!
//! Supports `--key value` flags with typed accessors and good error
//! messages; small enough that pulling in an argument-parsing crate
//! (outside this workspace's sanctioned dependency set) is not warranted.

use std::collections::BTreeMap;

/// Flags that take no value (presence means `true`).
const BOOLEAN_FLAGS: &[&str] = &["explain", "json", "metrics", "no-metrics"];

/// Parsed flags: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// A CLI-level error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// Flags in [`BOOLEAN_FLAGS`] take no value and store `"true"`
    /// (`--json` needs no explicit literal); every other flag requires
    /// a following value — a forgotten value stays a fail-fast error,
    /// never a silently-misparsed `"true"`.
    ///
    /// # Errors
    ///
    /// Returns an error for a valued `--flag` with no following value
    /// or a repeated flag.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut args = Self::default();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&name) {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| CliError(format!("--{name} requires a value")))?
                        .clone()
                };
                if args.flags.insert(name.to_string(), value).is_some() {
                    return Err(CliError(format!("--{name} given twice")));
                }
            } else {
                args.positional.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A required typed flag.
    ///
    /// # Errors
    ///
    /// Missing flag or parse failure.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| CliError(format!("--{name}: cannot parse '{raw}'")))
    }

    /// An optional typed flag with a default.
    ///
    /// # Errors
    ///
    /// Parse failure (missing flag yields the default).
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError(format!("--{name}: cannot parse '{raw}'"))),
        }
    }

    /// Whether any unknown flags remain beyond `known` (catches typos).
    ///
    /// # Errors
    ///
    /// Reports the first unknown flag.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), CliError> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(CliError(format!(
                    "unknown flag --{key} (known: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, CliError> {
        Args::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_and_positionals() {
        let args = parse(&["plan", "--users", "1000", "--p", "0.3"]).unwrap();
        assert_eq!(args.positional(), ["plan"]);
        assert_eq!(args.require::<u64>("users").unwrap(), 1000);
        assert!((args.require::<f64>("p").unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn defaults_and_missing() {
        let args = parse(&["x"]).unwrap();
        assert_eq!(args.get_or("tau", 1e-6).unwrap(), 1e-6);
        assert!(args.require::<u64>("users").is_err());
    }

    #[test]
    fn rejects_duplicates_and_supports_boolean_flags() {
        assert!(parse(&["--p", "0.3", "--p", "0.4"]).is_err());
        // `--json` is a declared boolean flag and consumes no value.
        let args = parse(&["--json", "--users", "7"]).unwrap();
        assert!(args.get_or("json", false).unwrap());
        assert_eq!(args.require::<u64>("users").unwrap(), 7);
        let args = parse(&["--users", "7", "--json"]).unwrap();
        assert!(args.get_or("json", false).unwrap());
        let args = parse(&["--users", "7"]).unwrap();
        assert!(!args.get_or("json", false).unwrap());
        // Valued flags still fail fast when the value is forgotten.
        assert!(parse(&["--users"]).is_err());
        let e = parse(&["--wal", "--users", "100"]);
        assert!(e.is_ok()); // "--users" becomes --wal's value…
        assert!(e.unwrap().require::<u64>("wal").is_err()); // …and fails typed parsing
    }

    #[test]
    fn rejects_unknown_flags() {
        let args = parse(&["--userz", "7"]).unwrap();
        assert!(args.reject_unknown(&["users"]).is_err());
        let ok = parse(&["--users", "7"]).unwrap();
        assert!(ok.reject_unknown(&["users"]).is_ok());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let args = parse(&["--users", "abc"]).unwrap();
        let err = args.require::<u64>("users").unwrap_err();
        assert!(err.0.contains("abc"));
    }
}
