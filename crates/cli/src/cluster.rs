//! The `cluster` subcommand family: the CLI face of the sharded pool.
//!
//! ```text
//! psketch cluster serve  --shards 3 [--base-port 7180] [--map-out FILE]
//!                        [announcement flags] [--workers 4]
//!                        [--wal-root DIR] [--budget EPS]
//!     Spawn N shard nodes in one process (ports base-port..base-port+N,
//!     or ephemeral with --base-port 0), print the shard map JSON (and
//!     write it to --map-out), serve until killed. For independently
//!     killable nodes, run `psketch serve --shard i/N` per node instead.
//!
//! psketch cluster submit (--map FILE | --addrs a,b,c) [--users 1000]
//!                        [--seed 1] [--id-base 0] [--batch 500]
//!     Simulate user agents against the cluster: every submission is
//!     routed to its user's shard in parallel. Prints one outcome row
//!     per shard (accepted/rejected, or the error and the submissions
//!     it lost) and exits non-zero on a partial ingest.
//!
//! psketch cluster query conj --subset 0,1 --value 10 (--map|--addrs)
//! psketch cluster query dist --subset 0,1            (--map|--addrs)
//! psketch cluster query mean     --field 0:4         (--map|--addrs)
//! psketch cluster query interval --field 0:4 --le 9  (--map|--addrs)
//! psketch cluster query dnf      --clauses "0=1;1=1" (--map|--addrs)
//! psketch cluster query tree     --tree "0?(1?1:0):0"(--map|--addrs)
//! psketch cluster query moment   --field 0:4 --order 2
//! psketch cluster query ping                         (--map|--addrs)
//!     Scatter-gather analyst queries: every kind compiles to one
//!     query plan and merges exact per-shard term counts (--json for
//!     machine-readable output). Shards are queried **in parallel**
//!     over persistent per-shard connections; --fanout bounds the
//!     concurrency (0 = all shards at once, the default; 1 = the old
//!     sequential visit order, bit-identical answers either way).
//!     Answers over a degraded cluster say exactly which shards are
//!     missing instead of silently skewing the estimate. Plan-backed
//!     kinds take `--explain`: the answer is followed by a span
//!     waterfall stitching the router's scatter/merge phases with each
//!     shard's own timing subtree, plus the trace nonce for later
//!     `cluster trace` fetches (answers stay float-bit-identical).
//!
//! psketch cluster status (--map|--addrs)
//!     Per-shard coordinator + server counters and the exact merge.
//!
//! psketch cluster trace NONCE (--map|--addrs)
//!     Fetch the recorded span trees for a recent query nonce (decimal
//!     or 0x-hex, as printed by `--explain`) from every shard's trace
//!     ring and render each as a waterfall. Uncharged: replaying a
//!     nonce here never touches the privacy budget.
//! ```

use crate::args::{Args, CliError};
use crate::service::{
    announced_width, build_announcement, parse_subset, parse_value, synthetic_submissions,
};
use psketch_cluster::{parallel_ingest, Coverage, Router, RouterConfig, ShardMap};
use psketch_prf::Prg;
use psketch_protocol::ShardIdentity;
use psketch_server::wal::WalConfig;
use psketch_server::{wire, Server, ServerConfig};
use rand::SeedableRng;
use std::time::Duration;

fn err(e: impl std::fmt::Display) -> CliError {
    CliError(e.to_string())
}

/// Dispatches `psketch cluster <serve|submit|query|status|trace>`.
pub fn cluster(args: &Args) -> Result<(), CliError> {
    let kind = args
        .positional()
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError("usage: psketch cluster <serve|submit|query|status|trace> …".into())
        })?;
    match kind {
        "serve" => serve(args),
        "submit" => submit(args),
        "query" => query(args),
        "status" => status(args),
        "trace" => trace(args),
        other => Err(CliError(format!(
            "unknown cluster command '{other}' (try serve, submit, query, status, trace)"
        ))),
    }
}

/// Loads the shard map from `--map FILE` or `--addrs a,b,c`.
fn load_map(args: &Args) -> Result<ShardMap, CliError> {
    let map_file: String = args.get_or("map", String::new())?;
    if !map_file.is_empty() {
        let raw = std::fs::read_to_string(&map_file)
            .map_err(|e| CliError(format!("cannot read --map {map_file}: {e}")))?;
        return ShardMap::from_json(&raw).map_err(err);
    }
    let addrs: String = args.get_or("addrs", String::new())?;
    if addrs.is_empty() {
        return Err(CliError(
            "need --map FILE or --addrs host:port,host:port,…".into(),
        ));
    }
    ShardMap::new(0, addrs.split(',').map(str::trim)).map_err(err)
}

fn router(args: &Args) -> Result<Router, CliError> {
    let timeout: f64 = args.get_or("timeout", 10.0)?;
    if !timeout.is_finite() || timeout <= 0.0 {
        return Err(CliError(format!("--timeout {timeout} must be positive")));
    }
    let retries: u32 = args.get_or("retries", 2)?;
    let analyst: u64 = args.get_or("analyst", 0)?;
    // 0 = fan out to every shard concurrently; 1 = sequential oracle.
    let fanout: usize = args.get_or("fanout", 0)?;
    let slow_query_ms = match args.get_or("slow-query-ms", -1i64)? {
        ms if ms < 0 => None,
        ms => Some(u64::try_from(ms).expect("non-negative by the guard above")),
    };
    let map = load_map(args)?;
    Router::new(
        map,
        RouterConfig {
            timeout: Duration::from_secs_f64(timeout),
            retries,
            analyst,
            fanout,
            slow_query_ms,
            ..RouterConfig::default()
        },
    )
    .map_err(err)
}

/// The flags every router-backed subcommand shares.
const ROUTER_FLAGS: &[&str] = &[
    "map",
    "addrs",
    "timeout",
    "retries",
    "analyst",
    "fanout",
    "slow-query-ms",
];

/// Renders an answer's coverage; degraded answers name their missing
/// shards (scripts and the CI smoke test grep for "missing shard").
fn print_coverage(coverage: &Coverage) {
    if coverage.is_complete() {
        println!(
            "coverage: {}/{} shards, population {}",
            coverage.responding.len(),
            coverage.total_shards,
            coverage.population
        );
        return;
    }
    let missing: Vec<String> = coverage
        .missing
        .iter()
        .map(|o| o.shard.to_string())
        .collect();
    let known = match coverage.missing_fraction() {
        Some(f) => format!("{:.1}% of known users missing", f * 100.0),
        None => "missing population unknown".into(),
    };
    println!(
        "degraded: missing shard(s) {} of {} ({known}); answer covers population {}",
        missing.join(","),
        coverage.total_shards,
        coverage.population
    );
    for outage in &coverage.missing {
        eprintln!("  shard {}: {}", outage.shard, outage.error);
    }
}

/// `psketch cluster serve`: spawn N shard nodes in one process.
fn serve(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "shards",
        "base-port",
        "map-out",
        "db-id",
        "users",
        "tau",
        "p",
        "width",
        "key-seed",
        "workers",
        "wal-root",
        "budget",
        "lanes",
        "metrics-addr",
        "slow-query-ms",
        "no-metrics",
    ])?;
    crate::service::configure_lanes(args)?;
    let (metrics_addr, slow_query_ms) = crate::service::configure_observability(args)?;
    let shards: u32 = args.get_or("shards", 3)?;
    if shards == 0 || shards > 64 {
        return Err(CliError(format!("--shards {shards} must be in 1..=64")));
    }
    let base_port: u16 = args.get_or("base-port", 7180)?;
    let workers: usize = args.get_or("workers", 4)?;
    let wal_root: String = args.get_or("wal-root", String::new())?;
    let budget = match args.get_or("budget", f64::NAN)? {
        eps if eps.is_nan() => None,
        eps => Some(eps),
    };
    let announcement = build_announcement(args)?;

    let mut servers = Vec::with_capacity(shards as usize);
    for shard_id in 0..shards {
        let addr = if base_port == 0 {
            "127.0.0.1:0".to_string()
        } else {
            format!("127.0.0.1:{}", base_port + shard_id as u16)
        };
        let wal = if wal_root.is_empty() {
            None
        } else {
            Some(WalConfig::new(format!("{wal_root}/shard-{shard_id}")))
        };
        // The metrics registry is process-global, so the single-process
        // cluster needs exactly one exposition listener: shard 0 hosts
        // it and the scrape covers every shard's observations.
        let server = Server::start(
            addr.as_str(),
            announcement.clone(),
            ServerConfig {
                workers,
                wal,
                shard: Some(ShardIdentity {
                    shard_id,
                    shard_count: shards,
                }),
                analyst_budget: budget,
                metrics_addr: if shard_id == 0 {
                    metrics_addr.clone()
                } else {
                    None
                },
                slow_query_ms,
            },
        )
        .map_err(|e| CliError(format!("cannot serve shard {shard_id} on {addr}: {e}")))?;
        println!(
            "shard {shard_id}/{shards} listening on {} (recovered {} submissions)",
            server.local_addr(),
            server.coordinator().stats().accepted
        );
        servers.push(server);
    }

    let map =
        ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string())).expect("shards >= 1");
    let json = map.to_json();
    println!("shard map: {json}");
    let map_out: String = args.get_or("map-out", String::new())?;
    if !map_out.is_empty() {
        std::fs::write(&map_out, format!("{json}\n"))
            .map_err(|e| CliError(format!("cannot write --map-out {map_out}: {e}")))?;
        println!("wrote shard map to {map_out}");
    }
    println!(
        "cluster listening ({shards} shards, {} PRF lanes, eps = {:.4}/user)",
        psketch_core::lane_width(),
        announcement.epsilon_cost()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// `psketch cluster submit`: simulate user agents, routed by shard.
/// Per-shard outcomes are reported individually, so a partial ingest
/// (some shards down) is visible as exactly that — never mistaken for
/// a total failure.
fn submit(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "map", "addrs", "timeout", "retries", "analyst", "fanout", "users", "seed", "id-base",
        "batch",
    ])?;
    let users: u64 = args.get_or("users", 1_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let id_base: u64 = args.get_or("id-base", 0)?;
    let batch: usize = args.get_or("batch", 500)?;
    if users == 0 || batch == 0 {
        return Err(CliError("--users and --batch must be positive".into()));
    }
    let timeout: f64 = args.get_or("timeout", 10.0)?;
    let mut router = router(args)?;
    let ann = router.announcement().map_err(err)?;
    let width = announced_width(&ann);

    // Generate and ingest one chunk at a time so memory stays flat
    // whatever --users is; chunks are several batches per shard so the
    // per-chunk reconnect amortizes.
    let shards = router.map().len();
    let chunk = (batch * shards * 8).max(batch) as u64;
    let mut rng = Prg::seed_from_u64(seed);
    let start = std::time::Instant::now();
    // Accumulated per shard: accepted, rejected, lost-to-error, last error.
    let mut tallies: Vec<(u64, u64, u64, Option<String>)> = vec![(0, 0, 0, None); shards];
    let mut next = 0u64;
    while next < users {
        let chunk_end = (next + chunk).min(users);
        let submissions =
            synthetic_submissions(&ann, width, &mut rng, id_base + next..id_base + chunk_end)?;
        let report = parallel_ingest(
            router.map(),
            &submissions,
            Duration::from_secs_f64(timeout),
            batch,
        );
        for row in &report.shards {
            let tally = &mut tallies[row.shard as usize];
            tally.0 += row.accepted;
            tally.1 += row.rejected;
            tally.2 += row.lost();
            if let Some(e) = &row.error {
                tally.3 = Some(e.clone());
            }
        }
        next = chunk_end;
    }
    let secs = start.elapsed().as_secs_f64();
    let accepted: u64 = tallies.iter().map(|t| t.0).sum();
    let rejected: u64 = tallies.iter().map(|t| t.1).sum();
    let lost: u64 = tallies.iter().map(|t| t.2).sum();
    for (shard, (a, r, l, error)) in tallies.iter().enumerate() {
        match error {
            None => println!("shard {shard}: accepted {a}, rejected {r}"),
            Some(e) => println!("shard {shard}: accepted {a}, rejected {r}, LOST {l} ({e})"),
        }
    }
    println!(
        "submitted {users} users across {shards} shards: accepted {accepted}, \
         rejected {rejected}, lost {lost} ({:.0} submissions/s)",
        accepted as f64 / secs.max(1e-9),
    );
    if lost > 0 {
        return Err(CliError(format!(
            "partial ingest: {lost} submissions lost to unreachable shards (re-submit them)"
        )));
    }
    if rejected > 0 {
        return Err(CliError(format!(
            "{rejected} submissions rejected (duplicate ids? try --id-base)"
        )));
    }
    Ok(())
}

/// `psketch cluster query <conj|dist|mean|interval|dnf|tree|moment|ping>`:
/// scatter-gather queries. Every kind (bar `ping`) compiles to a
/// [`TermPlan`](psketch_queries::TermPlan) and merges exact per-shard
/// term counts; `--json` switches to machine-readable output including
/// the degraded-coverage fields.
fn query(args: &Args) -> Result<(), CliError> {
    let kind = args
        .positional()
        .get(2)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError(
                "usage: psketch cluster query \
                 <conj|dist|mean|interval|dnf|tree|moment|ping> …"
                    .into(),
            )
        })?;
    if crate::families::PLAN_KINDS.contains(&kind) {
        let mut known = ROUTER_FLAGS.to_vec();
        known.extend_from_slice(crate::families::kind_flags(kind));
        args.reject_unknown(&known)?;
        let plan = crate::families::family_plan(kind, args)?;
        let json: bool = args.get_or("json", false)?;
        let explain: bool = args.get_or("explain", false)?;
        if json && explain {
            return Err(CliError(
                "--explain prints a text waterfall; drop --json".into(),
            ));
        }
        let mut router = router(args)?;
        // The profiled path shares the merge code with the plain one,
        // so the answers are float-bit-identical either way.
        let (answer, traced) = if explain {
            let explained = router.explain_plan(&plan).map_err(err)?;
            (explained.answer, Some((explained.nonce, explained.trace)))
        } else {
            (router.execute_plan(&plan).map_err(err)?, None)
        };
        if json {
            println!(
                "{}",
                crate::families::json_cluster_plan_document(
                    kind,
                    &plan,
                    &answer.outputs,
                    &answer.coverage
                )
            );
        } else {
            println!("{} ({} plan terms)", plan.description(), plan.cost());
            for (output, ans) in plan.outputs().iter().zip(&answer.outputs) {
                println!(
                    "  {}: {:.6} (terms {}, min n {})",
                    output.label, ans.value, ans.queries_used, ans.min_sample_size
                );
            }
            print_coverage(&answer.coverage);
        }
        if let Some((nonce, tree)) = traced {
            println!();
            print!("{}", psketch_obs::render_waterfall(&tree));
            println!("trace {}", psketch_obs::trace_hex(nonce));
        }
        return Ok(());
    }
    match kind {
        "conj" => {
            let mut known = ROUTER_FLAGS.to_vec();
            known.extend_from_slice(&["subset", "value", "json"]);
            args.reject_unknown(&known)?;
            let subset = parse_subset(&args.require::<String>("subset")?)?;
            let value = parse_value(&args.require::<String>("value")?, subset.len())?;
            let json: bool = args.get_or("json", false)?;
            let mut router = router(args)?;
            let answer = router.conjunctive(subset, value).map_err(err)?;
            if json {
                println!(
                    "{{\"query\":\"conj\",\"estimate\":{},\"coverage\":{}}}",
                    crate::families::json_estimate(&answer.estimate),
                    crate::families::json_coverage(&answer.coverage)
                );
                return Ok(());
            }
            println!(
                "estimate: {:.6} (raw {:.6}, n = {}, 95% +/- {:.6})",
                answer.estimate.fraction,
                answer.estimate.raw,
                answer.estimate.sample_size,
                answer.estimate.half_width(0.05)
            );
            print_coverage(&answer.coverage);
        }
        "dist" => {
            let mut known = ROUTER_FLAGS.to_vec();
            known.extend_from_slice(&["subset", "json"]);
            args.reject_unknown(&known)?;
            let subset = parse_subset(&args.require::<String>("subset")?)?;
            let width = subset.len();
            let json: bool = args.get_or("json", false)?;
            let mut router = router(args)?;
            let answer = router.distribution(subset).map_err(err)?;
            if json {
                let cells: Vec<String> = answer
                    .estimates
                    .iter()
                    .enumerate()
                    .map(|(v, est)| {
                        format!(
                            "{{\"value\":{v},\"estimate\":{}}}",
                            crate::families::json_estimate(est)
                        )
                    })
                    .collect();
                println!(
                    "{{\"query\":\"dist\",\"estimates\":[{}],\"coverage\":{}}}",
                    cells.join(","),
                    crate::families::json_coverage(&answer.coverage)
                );
                return Ok(());
            }
            println!(
                "{:>width$}  {:>10}  {:>8}",
                "value",
                "estimate",
                "n",
                width = width.max(5)
            );
            for (v, est) in answer.estimates.iter().enumerate() {
                let bits: String = (0..width)
                    .map(|b| if (v >> b) & 1 == 1 { '1' } else { '0' })
                    .collect();
                println!(
                    "{bits:>w$}  {:>10.6}  {:>8}",
                    est.fraction,
                    est.sample_size,
                    w = width.max(5)
                );
            }
            print_coverage(&answer.coverage);
        }
        "ping" => {
            args.reject_unknown(ROUTER_FLAGS)?;
            let mut router = router(args)?;
            let outages = router.ping().map_err(err)?;
            let total = router.map().len();
            if outages.is_empty() {
                println!("pong from all {total} shards");
            } else {
                let missing: Vec<String> = outages.iter().map(|o| o.shard.to_string()).collect();
                println!(
                    "degraded: missing shard(s) {} of {total}",
                    missing.join(",")
                );
                return Err(CliError(format!(
                    "{} of {total} shards unreachable",
                    outages.len()
                )));
            }
        }
        other => {
            return Err(CliError(format!(
                "unknown cluster query kind '{other}' (try conj, dist, mean, interval, dnf, \
                 tree, moment, ping)"
            )));
        }
    }
    Ok(())
}

/// `psketch cluster status`: per-shard counters plus the exact merge.
/// `--metrics` additionally gathers every shard's metrics registry and
/// prints the cluster-wide merge (counters summed, histograms added
/// bucket-wise, so the quantiles are over all shards' observations).
fn status(args: &Args) -> Result<(), CliError> {
    let mut known = ROUTER_FLAGS.to_vec();
    known.push("metrics");
    args.reject_unknown(&known)?;
    let mut router = router(args)?;
    let status = router.status().map_err(err)?;
    let mut up = 0usize;
    for row in &status.per_shard {
        match &row.status {
            Ok((coordinator, server)) => {
                up += 1;
                let requests = server.total_requests();
                let top: Vec<String> = server
                    .frames
                    .iter()
                    .map(|&(kind, count)| {
                        format!(
                            "{} {count}",
                            wire::request_kind_name(kind).unwrap_or("unknown")
                        )
                    })
                    .collect();
                println!(
                    "shard {} @ {}: up {}s | accepted {} | rejected {} | records {} | \
                     {requests} requests ({}) | plans {} (terms scanned {}, reused {}) | \
                     budget charged {} (replays {}, denials {})",
                    row.shard,
                    row.addr,
                    server.uptime_secs,
                    coordinator.accepted,
                    coordinator.rejected(),
                    coordinator.records,
                    top.join(", "),
                    server.plans.plans_executed,
                    server.plans.terms_scanned,
                    server.plans.terms_reused,
                    server.budget.charged_terms,
                    server.budget.replays,
                    server.budget.denials
                );
            }
            Err(error) => {
                println!("shard {} @ {}: DOWN ({error})", row.shard, row.addr);
            }
        }
    }
    // Uptime is the *maximum* across shards, not the sum: shards run
    // concurrently, and a summed "cluster uptime" would hide a freshly
    // restarted shard behind its long-lived peers.
    println!(
        "cluster: {up}/{} shards up | up {}s (max) | accepted {} | duplicates {} | \
         malformed {} | records {} | {} requests",
        status.per_shard.len(),
        status.merged_server.uptime_secs,
        status.merged.accepted,
        status.merged.duplicates,
        status.merged.malformed,
        status.merged.records,
        status.merged_server.total_requests()
    );
    if args.get_or("metrics", false)? {
        let (snapshot, outages) = router.metrics().map_err(err)?;
        print_merged_metrics(&snapshot, outages.len());
    }
    Ok(())
}

/// Parses a trace nonce as printed by `--explain`: `0x`-prefixed hex
/// or plain decimal.
fn parse_nonce(raw: &str) -> Result<u64, CliError> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map_err(|_| CliError(format!("cannot parse nonce '{raw}' (decimal or 0x-hex)")))
}

/// `psketch cluster trace NONCE`: fetch a recent query's span trees
/// from every shard's trace ring and render them. The per-span lines
/// are byte-identical to the shard subtrees inside the `--explain`
/// waterfall for the same nonce, so the two outputs diff cleanly.
fn trace(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(ROUTER_FLAGS)?;
    let raw = args
        .positional()
        .get(2)
        .ok_or_else(|| CliError("usage: psketch cluster trace NONCE (--map|--addrs)".into()))?;
    let nonce = parse_nonce(raw)?;
    let mut router = router(args)?;
    let (traces, outages) = router.trace(nonce).map_err(err)?;
    let mut found = 0usize;
    for (shard, tree) in &traces {
        match tree {
            Some(tree) => {
                found += 1;
                println!("shard {shard}: trace {}", psketch_obs::trace_hex(nonce));
                print!("{}", psketch_obs::render_waterfall(tree));
            }
            None => println!(
                "shard {shard}: no trace for {}",
                psketch_obs::trace_hex(nonce)
            ),
        }
    }
    for outage in &outages {
        eprintln!("  shard {}: {}", outage.shard, outage.error);
    }
    if found == 0 {
        return Err(CliError(format!(
            "no shard holds a trace for {} (rings keep the most recent {} profiled \
             queries; was the query run with --explain?)",
            psketch_obs::trace_hex(nonce),
            psketch_obs::span::RING_CAPACITY
        )));
    }
    Ok(())
}

/// Renders a cluster-merged metrics snapshot: every counter, then each
/// histogram's standard rollup (count/p50/p90/p99/max). Quantiles are
/// log₂-bucket upper bounds, exact maxima are exact.
fn print_merged_metrics(snapshot: &psketch_obs::RegistrySnapshot, missing: usize) {
    if missing > 0 {
        println!("metrics: merged over responding shards only ({missing} missing)");
    }
    for (id, value) in &snapshot.counters {
        println!("  counter {} = {value}", id.render());
    }
    for (id, value) in &snapshot.gauges {
        println!("  gauge {} = {value} (max over shards)", id.render());
    }
    for (id, hist) in &snapshot.histograms {
        let s = hist.summary();
        println!(
            "  hist {} count {} p50 {} p90 {} p99 {} max {}",
            id.render(),
            s.count,
            s.p50,
            s.p90,
            s.p99,
            s.max
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::BitSubset;
    use psketch_prf::GlobalKey;
    use psketch_protocol::AnnouncementBuilder;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn start_test_cluster(shards: u32) -> (Vec<Server>, String) {
        let ann = AnnouncementBuilder::new(9, 0.45, 5_000, 1e-6)
            .global_key(*GlobalKey::from_seed(2).as_bytes())
            .subset(BitSubset::single(0))
            .subset(BitSubset::single(1))
            .subset(BitSubset::range(0, 2))
            .build()
            .unwrap();
        let servers: Vec<Server> = (0..shards)
            .map(|shard_id| {
                Server::start(
                    "127.0.0.1:0",
                    ann.clone(),
                    ServerConfig {
                        workers: 2,
                        shard: Some(ShardIdentity {
                            shard_id,
                            shard_count: shards,
                        }),
                        ..ServerConfig::default()
                    },
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        (servers, addrs.join(","))
    }

    #[test]
    fn map_loading_and_validation() {
        let args = parse(&["cluster", "status"]);
        assert!(load_map(&args).is_err()); // neither --map nor --addrs
        let args = parse(&["cluster", "status", "--addrs", "a:1,b:2,c:3"]);
        let map = load_map(&args).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.addr_of(1), "b:2");
        let args = parse(&["cluster", "status", "--map", "/nonexistent/map.json"]);
        assert!(load_map(&args).is_err());
    }

    #[test]
    fn unknown_subcommands_and_flags_rejected() {
        assert!(cluster(&parse(&["cluster"])).is_err());
        assert!(cluster(&parse(&["cluster", "bogus"])).is_err());
        assert!(cluster(&parse(&["cluster", "query"])).is_err());
        assert!(cluster(&parse(&["cluster", "query", "bogus", "--addrs", "a:1"])).is_err());
        assert!(cluster(&parse(&["cluster", "serve", "--shards", "0"])).is_err());
        assert!(cluster(&parse(&[
            "cluster", "submit", "--bogus", "1", "--addrs", "a:1"
        ]))
        .is_err());
    }

    #[test]
    fn end_to_end_cluster_cli_against_in_process_nodes() {
        let (servers, addrs) = start_test_cluster(3);
        submit(&parse(&[
            "cluster", "submit", "--addrs", &addrs, "--users", "300", "--batch", "100",
        ]))
        .unwrap();
        // Duplicates rejected through the cluster path too.
        assert!(submit(&parse(&[
            "cluster", "submit", "--addrs", &addrs, "--users", "10",
        ]))
        .is_err());
        query(&parse(&[
            "cluster", "query", "conj", "--addrs", &addrs, "--subset", "0,1", "--value", "10",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster", "query", "dist", "--addrs", &addrs, "--subset", "0,1",
        ]))
        .unwrap();
        // Plan-backed families against the live cluster.
        query(&parse(&[
            "cluster", "query", "mean", "--addrs", &addrs, "--field", "0:2",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster", "query", "interval", "--addrs", &addrs, "--field", "0:2", "--le", "1",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster",
            "query",
            "dnf",
            "--addrs",
            &addrs,
            "--clauses",
            "0=1;1=1",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster",
            "query",
            "tree",
            "--addrs",
            &addrs,
            "--tree",
            "0?(1?1:0):0",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster", "query", "mean", "--addrs", &addrs, "--field", "0:2", "--json",
        ]))
        .unwrap();
        // The sequential-oracle fanout and a bounded fanout both serve.
        query(&parse(&[
            "cluster", "query", "conj", "--addrs", &addrs, "--subset", "0,1", "--value", "10",
            "--fanout", "1",
        ]))
        .unwrap();
        query(&parse(&[
            "cluster", "query", "conj", "--addrs", &addrs, "--subset", "0,1", "--value", "10",
            "--fanout", "2",
        ]))
        .unwrap();
        query(&parse(&["cluster", "query", "ping", "--addrs", &addrs])).unwrap();
        status(&parse(&["cluster", "status", "--addrs", &addrs])).unwrap();

        // Kill one node: ping degrades to an error, queries stay
        // answerable and status shows the outage.
        let mut servers = servers;
        servers.remove(1).shutdown();
        let fast = format!("--addrs {addrs} --timeout 2 --retries 0");
        let fast: Vec<&str> = fast.split(' ').collect();
        let mut ping_args = vec!["cluster", "query", "ping"];
        ping_args.extend(&fast);
        assert!(query(&parse(&ping_args)).is_err());
        let mut conj_args = vec![
            "cluster", "query", "conj", "--subset", "0,1", "--value", "11",
        ];
        conj_args.extend(&fast);
        query(&parse(&conj_args)).unwrap();
        let mut status_args = vec!["cluster", "status"];
        status_args.extend(&fast);
        status(&parse(&status_args)).unwrap();
        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn nonce_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_nonce("42").unwrap(), 42);
        assert_eq!(parse_nonce("0x2a").unwrap(), 42);
        assert_eq!(parse_nonce("0X2A").unwrap(), 42);
        assert_eq!(
            parse_nonce("0x00000000000000ff").unwrap(),
            255,
            "the fixed-width form printed by --explain parses back"
        );
        assert!(parse_nonce("nope").is_err());
        assert!(parse_nonce("0x").is_err());
    }

    #[test]
    fn explained_plan_stitches_one_subtree_per_shard() {
        let (servers, addrs) = start_test_cluster(3);
        submit(&parse(&[
            "cluster", "submit", "--addrs", &addrs, "--users", "120", "--batch", "60",
        ]))
        .unwrap();
        let args = parse(&[
            "cluster", "query", "mean", "--addrs", &addrs, "--field", "0:2",
        ]);
        let plan = crate::families::family_plan("mean", &args).unwrap();
        let mut router = router(&args).unwrap();

        let explained = router.explain_plan(&plan).unwrap();
        assert_eq!(explained.trace.name, "router:plan");
        assert!(explained.trace.find("router:scatter").is_some());
        assert!(explained.trace.find("router:merge").is_some());
        for shard in 0..3u32 {
            let wrapper = explained
                .trace
                .find(&format!("shard:{shard}"))
                .unwrap_or_else(|| panic!("waterfall is missing shard {shard}"));
            // Each wrapper holds exactly the shard-local subtree, whose
            // root names the server-side handler.
            assert_eq!(wrapper.children.len(), 1);
            assert_eq!(wrapper.children[0].name, "shard:partial_counts");
            assert!(wrapper.children[0].find("engine:count_terms").is_some());
        }

        // Profiling must not perturb the estimate: the plain path and
        // the explained path agree to the bit.
        let plain = router.execute_plan(&plan).unwrap();
        assert_eq!(plain.outputs.len(), explained.answer.outputs.len());
        for (a, b) in plain.outputs.iter().zip(&explained.answer.outputs) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }

        // The same nonce is fetchable from every shard's trace ring.
        let (traces, outages) = router.trace(explained.nonce).unwrap();
        assert!(outages.is_empty());
        assert_eq!(traces.len(), 3);
        for (shard, tree) in &traces {
            let tree = tree
                .as_ref()
                .unwrap_or_else(|| panic!("shard {shard} lost the trace"));
            assert_eq!(tree.name, "shard:partial_counts");
        }

        // The CLI faces of both paths run end to end.
        query(&parse(&[
            "cluster",
            "query",
            "mean",
            "--addrs",
            &addrs,
            "--field",
            "0:2",
            "--explain",
        ]))
        .unwrap();
        let nonce_arg = psketch_obs::trace_hex(explained.nonce);
        trace(&parse(&["cluster", "trace", &nonce_arg, "--addrs", &addrs])).unwrap();
        // --json and --explain are mutually exclusive; unknown nonces fail.
        assert!(query(&parse(&[
            "cluster",
            "query",
            "mean",
            "--addrs",
            &addrs,
            "--field",
            "0:2",
            "--explain",
            "--json",
        ]))
        .is_err());
        assert!(trace(&parse(&[
            "cluster",
            "trace",
            "0xdeadbeef",
            "--addrs",
            &addrs
        ]))
        .is_err());
        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn map_file_roundtrip_through_query() {
        let (servers, addrs) = start_test_cluster(2);
        let map = ShardMap::new(3, addrs.split(',')).unwrap();
        let path =
            std::env::temp_dir().join(format!("psketch-cli-map-{}.json", std::process::id()));
        std::fs::write(&path, map.to_json()).unwrap();
        let path_str = path.to_str().unwrap();
        query(&parse(&["cluster", "query", "ping", "--map", path_str])).unwrap();
        let _ = std::fs::remove_file(&path);
        for server in servers {
            server.shutdown();
        }
    }
}
