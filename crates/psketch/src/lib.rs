//! # psketch — Privacy via Pseudorandom Sketches
//!
//! Umbrella crate for the reproduction of *Privacy via Pseudorandom
//! Sketches* (Nina Mishra & Mark Sandler, PODS 2006). Re-exports the
//! whole workspace under one roof:
//!
//! * [`core`] ([`psketch_core`]) — the paper's mechanism: Algorithm 1
//!   (sketching), Algorithm 2 (conjunctive estimation), privacy
//!   accounting, the Appendix F combiner and the exact Lemma 3.3 analysis;
//! * [`prf`] ([`psketch_prf`]) — the from-scratch PRF substrate
//!   (SipHash-2-4, ChaCha20, biased bits, deterministic PRG);
//! * [`queries`] ([`psketch_queries`]) — the §4.1/Appendix E derived
//!   query compilers (means, inner products, intervals, decision trees,
//!   `a+b < 2^r`) and the execution engine;
//! * [`baselines`] ([`psketch_baselines`]) — randomized response,
//!   retention replacement, hashing, output perturbation, attacks;
//! * [`data`] ([`psketch_data`]) — synthetic populations with exact
//!   ground truth;
//! * [`protocol`] ([`psketch_protocol`]) — the deployment layer:
//!   coordinator announcements, budget-enforcing user agents, wire-format
//!   submissions;
//! * [`linalg`] ([`psketch_linalg`]) — the dense linear algebra behind
//!   the Appendix F recovery system;
//! * [`obs`] ([`psketch_obs`]) — the std-only observability layer:
//!   process-wide metrics registry (counters, gauges, log₂ latency
//!   histograms), leveled structured logging with trace correlation,
//!   and the Prometheus-text exposition endpoint.
//!
//! See the repository README for a guided tour, `examples/` for runnable
//! programs and EXPERIMENTS.md for the paper-claim-by-claim validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use psketch_baselines as baselines;
pub use psketch_core as core;
pub use psketch_data as data;
pub use psketch_linalg as linalg;
pub use psketch_obs as obs;
pub use psketch_prf as prf;
pub use psketch_protocol as protocol;
pub use psketch_queries as queries;

// The most-used types at the crate root for ergonomic imports.
pub use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Error, Estimate, HFunction,
    IntField, PrivacyAccountant, Profile, Sketch, SketchDb, SketchParams, Sketcher, UserId,
};
pub use psketch_prf::{Bias, GlobalKey, PrfKind, Prg};
