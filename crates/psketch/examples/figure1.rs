//! Figure 1 of the paper, runnable.
//!
//! "A very private (but very inefficient) publishing method": a 3-bit
//! value becomes a 2³-entry indicator vector, each entry perturbed with
//! probability p — and the sketch is the `log log`-sized object that
//! simulates exactly this construction via a pseudorandom function.
//!
//! Run: `cargo run --release --example figure1`

use psketch::{BitString, BitSubset, GlobalKey, Prg, SketchParams, Sketcher, UserId};
use psketch_prf::Bias;
use rand::{Rng, SeedableRng};

fn main() {
    let p = 0.3;
    let secret = 0b100u64; // the paper's example value '100'
    let k = 3usize;
    let mut rng = Prg::seed_from_u64(2005);

    println!("Figure 1 — the inefficient construction (2^k perturbed indicator bits)\n");
    let header: Vec<String> = (0..1u64 << k).map(|v| format!("{v:03b}")).collect();
    println!("all possible private values: {}", header.join(" "));

    let indicator: Vec<u8> = (0..1u64 << k)
        .map(|v| u8::from(v == reverse_bits(secret, k)))
        .collect();
    // (The paper writes values MSB-first; the indicator position of '100'
    // is the value 4 read MSB-first.)
    println!(
        "user indicator vector      : {}",
        indicator
            .iter()
            .map(|b| format!("{b:>3}"))
            .collect::<String>()
    );

    let bias = Bias::from_prob(p);
    let published: Vec<u8> = indicator
        .iter()
        .map(|&b| {
            let flip = bias.decide(rng.next_u64());
            b ^ u8::from(flip)
        })
        .collect();
    println!(
        "user published vector      : {}",
        published
            .iter()
            .map(|b| format!("{b:>3}"))
            .collect::<String>()
    );
    println!(
        "\ncost: 2^k = {} bits — exponential in the subset size.",
        1 << k
    );

    println!("\n--- the sketch: the same object in ceil(log log O(M)) bits ---\n");
    let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(8)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let value = BitString::from_u64(reverse_bits(secret, k), k);
    let run = sketcher
        .sketch_value_with_stats(UserId(1), &subset, &value, &mut rng)
        .unwrap();
    println!(
        "published sketch: key {} ({} bits, {} iterations)",
        run.sketch.key,
        params.sketch_bits(),
        run.iterations
    );

    // The sketch defines the same virtual vector: H(id, B, v, s) for all v.
    let virtual_vector: Vec<u8> = (0..1u64 << k)
        .map(|v| {
            let vv = BitString::from_u64(v, k);
            u8::from(sketcher.h().eval(UserId(1), &subset, &vv, run.sketch.key))
        })
        .collect();
    println!(
        "virtual perturbed vector   : {}",
        virtual_vector
            .iter()
            .map(|b| format!("{b:>3}"))
            .collect::<String>()
    );
    println!(
        "\nthe virtual entry at the true value is 1 with prob 1-p = {:.1},",
        1.0 - p
    );
    println!("every other entry with prob p = {p:.1} — Figure 1, at loglog cost.");
}

/// Interprets the paper's MSB-first value as our LSB-first BitString index.
fn reverse_bits(v: u64, k: usize) -> u64 {
    (0..k).fold(0, |acc, i| acc | (((v >> i) & 1) << (k - 1 - i)))
}
