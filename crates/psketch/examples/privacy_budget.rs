//! Privacy budgeting: how many sketches may one user release?
//!
//! Corollary 3.4 makes privacy a resource: each sketch multiplies the
//! worst-case likelihood ratio by `((1−p)/p)⁴`. This example plans a bias
//! for a release schedule, spends the budget sketch by sketch, and shows
//! the refusal when the budget runs dry.
//!
//! Run: `cargo run --release --example privacy_budget`

use psketch::core::theory::{epsilon_for, p_for_epsilon, privacy_ratio_bound};
use psketch::core::PrivacyAccountant;

fn main() {
    println!("=== planning: bias for an ε-budget over l sketches (Cor 3.4) ===");
    println!(
        "{:>6} {:>5} {:>12} {:>12} {:>14}",
        "eps", "l", "paper p", "exact p", "achieved eps"
    );
    for &(eps, l) in &[(0.5f64, 1u32), (0.5, 8), (0.5, 64), (0.1, 8), (2.0, 8)] {
        let acct = PrivacyAccountant::plan(eps, l);
        println!(
            "{eps:>6.2} {l:>5} {:>12.6} {:>12.6} {:>14.4}",
            p_for_epsilon(eps, l),
            acct.p(),
            epsilon_for(acct.p(), l),
        );
    }

    println!("\n=== spending: a user with ε = 1.0 at p = 0.49 ===");
    let mut acct = PrivacyAccountant::new(0.49, 1.0);
    println!(
        "per-sketch ratio ((1-p)/p)^4 = {:.4}; budget allows {} sketches",
        privacy_ratio_bound(acct.p()),
        acct.remaining_sketches()
    );
    let mut released = 0;
    loop {
        match acct.charge(1) {
            Ok(()) => {
                released += 1;
                println!(
                    "  sketch {released:>2}: spent eps = {:.4}, remaining releases = {}",
                    acct.spent_epsilon(),
                    acct.remaining_sketches()
                );
            }
            Err(e) => {
                println!("  refused: {e}");
                break;
            }
        }
    }
    assert!(released > 0);
    println!("\nok: the accountant stopped the user before the budget broke");
}
