//! Survey analytics: the paper's motivating epidemiology workload.
//!
//! A sensitive health survey (HIV status, AIDS, smoking, …) is published
//! only as sketches; the analyst then answers the paper's introductory
//! query ("what fraction of individuals are HIV+ and do not have AIDS"),
//! runs a decision-tree cohort query, and checks a privacy budget for the
//! number of sketches each user released.
//!
//! Run: `cargo run --release --example survey_analytics`

use psketch::core::PrivacyAccountant;
use psketch::queries::{DecisionTree, QueryEngine};
use psketch::{BitString, BitSubset, ConjunctiveQuery, GlobalKey, Prg, SketchParams, Sketcher};
use psketch_data::SurveyModel;
use rand::SeedableRng;

fn main() {
    let m = 60_000;
    let model = SurveyModel::epidemiology();
    let mut rng = Prg::seed_from_u64(7);
    let pop = model.generate(m, &mut rng);
    println!("survey attributes: {:?}", model.names());
    println!("population: {m} users\n");

    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(1)).unwrap();
    let sketcher = Sketcher::new(params);
    let db = psketch::SketchDb::new();

    // Users sketch the (hiv, aids) pair and the (smoker, inhaled, urban)
    // triple — two sketches per user.
    let health = BitSubset::new(vec![0, 1]).unwrap();
    let lifestyle = BitSubset::new(vec![2, 3, 4]).unwrap();
    let failures = pop
        .publish_all(
            &sketcher,
            &[health.clone(), lifestyle.clone()],
            &db,
            &mut rng,
        )
        .unwrap();
    println!(
        "published {} sketches ({failures} failures)",
        db.total_records()
    );

    // Privacy accounting: 2 sketches at p = 0.3.
    let mut accountant = PrivacyAccountant::new(params.p(), 1e4);
    accountant.charge(2).unwrap();
    println!(
        "privacy spent per user: eps = {:.2} (ratio {:.1})",
        accountant.spent_epsilon(),
        1.0 + accountant.spent_epsilon()
    );

    // The paper's intro query: HIV+ and NOT AIDS.
    let engine = QueryEngine::new(params);
    let q = ConjunctiveQuery::new(health, BitString::from_bits(&[true, false])).unwrap();
    let est = engine.estimator().estimate(&db, &q).unwrap();
    let truth = pop.true_fraction_by(|p| p.get(0) && !p.get(1));
    println!("\nquery: HIV+ AND NOT AIDS");
    println!("  truth    : {truth:.5}");
    println!(
        "  estimate : {:.5} (clamped {:.5})",
        est.fraction,
        est.clamped()
    );

    // A decision-tree cohort over the lifestyle triple:
    // smoker ? urban : (inhaled AND urban).
    let tree = DecisionTree::split(
        3,
        DecisionTree::split(
            2,
            DecisionTree::Leaf(false),
            DecisionTree::split(4, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
        ),
        DecisionTree::split(4, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
    );
    let lq = tree.to_linear_query();
    // The tree's paths live inside the sketched lifestyle subset? No —
    // each path is its own conjunction on single attributes; publish the
    // needed subsets too (in a real deployment the coordinator announces
    // them up front).
    let needed = lq.required_subsets();
    pop.publish_all(&sketcher, &needed, &db, &mut rng).unwrap();
    let ans = engine.linear(&db, &lq).unwrap();
    let tree_truth = pop.true_fraction_by(|p| tree.evaluate(p));
    println!(
        "\ndecision-tree cohort (depth {}, {} paths):",
        tree.depth(),
        lq.num_queries()
    );
    println!("  truth    : {tree_truth:.4}");
    println!("  estimate : {:.4}", ans.value);

    assert!((est.fraction - truth).abs() < 0.02);
    assert!((ans.value - tree_truth).abs() < 0.05);
    println!("\nok: both estimates inside their error bands");
}
