//! A full deployment round: coordinator, budget-enforcing user agents,
//! wire-format submissions, and an analyst mining the public pool.
//!
//! This is the paper's §1 scenario as a running system: "individuals
//! maintain all of their private data and … release perturbed versions …
//! so that privacy is preserved and large-scale statistical patterns can
//! be approximately recovered."
//!
//! Run: `cargo run --release --example federated_deployment`

use psketch::protocol::{AnnouncementBuilder, Coordinator, UserAgent};
use psketch::queries::{CategoricalAttribute, CategoricalMiner};
use psketch::{GlobalKey, IntField, Prg, Profile, UserId};
use rand::{RngExt, SeedableRng};

fn main() {
    let m = 30_000u64;
    let p = 0.3;
    let mut rng = Prg::seed_from_u64(2026);

    // --- Coordinator: publish the plan -----------------------------------
    // One categorical attribute: employment sector, 6 levels in 3 bits.
    let field = IntField::new(0, 3);
    let sector = CategoricalAttribute::new(field, 6);
    let announcement = AnnouncementBuilder::new(1, p, m, 1e-6)
        .global_key(*GlobalKey::from_seed(99).as_bytes())
        .subset(sector.required_subset())
        .build()
        .unwrap();
    println!("coordinator announces:");
    println!(
        "  p = {}, sketch = {} bits (Lemma 3.1 for M = {m}, tau = 1e-6)",
        p, announcement.sketch_bits
    );
    println!(
        "  privacy cost per participant: eps = {:.2}",
        announcement.epsilon_cost()
    );
    let coordinator = Coordinator::new(announcement.clone());

    // --- Users: participate (or refuse) with private randomness ----------
    let weights = [0.28f64, 0.22, 0.18, 0.14, 0.10, 0.08];
    let mut truth = [0u64; 6];
    let mut refusals = 0u64;
    for i in 0..m {
        let mut u = rng.random::<f64>();
        let mut level = 5u64;
        for (j, &w) in weights.iter().enumerate() {
            if u < w {
                level = j as u64;
                break;
            }
            u -= w;
        }
        let mut profile = Profile::zeros(3);
        field.write(&mut profile, level);
        // 5% of users run strict budgets and refuse this plan.
        let budget = if i % 20 == 0 { 0.5 } else { 1e3 };
        let mut agent = UserAgent::new(UserId(i), profile, p, budget);
        if !agent.can_participate(&announcement) {
            refusals += 1;
            continue;
        }
        truth[level as usize] += 1;
        let submission = agent.participate(&announcement, &mut rng).unwrap();
        coordinator.accept(&submission).unwrap();
    }
    println!(
        "\n{} participants, {refusals} budget refusals, {} rejected submissions",
        coordinator.participants(),
        coordinator.rejected()
    );

    // A replayed (duplicate) submission is rejected. User 1 already
    // participated above (user 0 was in the strict-budget cohort).
    let mut replayer = UserAgent::new(UserId(1), Profile::zeros(3), p, 1e3);
    if replayer.can_participate(&announcement) {
        let dup = replayer.participate(&announcement, &mut rng).unwrap();
        match coordinator.accept(&dup) {
            Err(e) => println!("replay attempt rejected: {e}"),
            Ok(()) => unreachable!("duplicate must be rejected"),
        }
    }

    // --- Analyst: mine the public pool ------------------------------------
    let params = announcement.validate().unwrap();
    let miner = CategoricalMiner::new(params);
    let hist = miner.histogram(coordinator.pool(), &sector).unwrap();
    let n: u64 = truth.iter().sum();
    println!("\nsector histogram (truth vs estimate):");
    for (level, &count) in truth.iter().enumerate() {
        println!(
            "  level {level}: {:.4}  vs  {:.4}",
            count as f64 / n as f64,
            hist.frequencies[level]
        );
    }
    let truth_dist: Vec<f64> = truth.iter().map(|&c| c as f64 / n as f64).collect();
    println!(
        "total variation: {:.4}; mode: level {}",
        hist.total_variation(&truth_dist),
        hist.mode()
    );
    assert!(hist.total_variation(&truth_dist) < 0.05);
    println!("\nok: the coordinator never saw a single raw profile");
}
