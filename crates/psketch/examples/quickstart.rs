//! Quickstart: the full sketch pipeline in ~60 lines.
//!
//! A population of users each holds three private bits. Everyone publishes
//! one ~10-bit sketch; the analyst answers conjunctive queries — including
//! negated attributes — without ever seeing a single true bit.
//!
//! Run: `cargo run --release --example quickstart`

use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, GlobalKey, Prg, Profile,
    SketchDb, SketchParams, Sketcher, UserId,
};
use rand::{RngExt, SeedableRng};

fn main() {
    // Public, database-wide parameters: bias p < 1/2, sketch length l,
    // and the global key of the public pseudorandom function H.
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(2006)).unwrap();
    println!(
        "parameters: p = {}, sketch = {} bits",
        params.p(),
        params.sketch_bits()
    );
    println!(
        "single-sketch privacy ratio bound ((1-p)/p)^4 = {:.2}",
        psketch::core::theory::privacy_ratio_bound(params.p())
    );

    // --- User side -------------------------------------------------------
    // 10,000 users; ~42% smoke (bit 0), ~25% inhale (bit 1), correlated
    // third bit. Each runs Algorithm 1 with *their own* randomness.
    let m = 10_000u64;
    let subset = BitSubset::range(0, 3);
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(42);
    let mut truth_count = 0u64;
    for i in 0..m {
        let smokes = rng.random::<f64>() < 0.42;
        let inhaled = smokes && rng.random::<f64>() < 0.6;
        let urban = rng.random::<f64>() < 0.5;
        let profile = Profile::from_bits(&[smokes, inhaled, urban]);
        // Ground truth for the demo query: smokes AND NOT inhaled.
        if smokes && !inhaled {
            truth_count += 1;
        }
        let sketch = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i), sketch);
    }
    println!(
        "\npublished {} sketches of {} bits each",
        db.total_records(),
        params.sketch_bits()
    );

    // --- Analyst side ------------------------------------------------------
    // "What fraction smokes but never inhaled?" — a conjunction with a
    // negated attribute, the paper's flagship query shape.
    let estimator = ConjunctiveEstimator::new(params);
    let query = ConjunctiveQuery::new(subset, BitString::from_bits(&[true, false, true])).unwrap();
    // This asks: smokes ∧ ¬inhaled ∧ urban. Ask both urban variants and add.
    let est_urban = estimator.estimate(&db, &query).unwrap();
    let query2 = ConjunctiveQuery::new(
        query.subset().clone(),
        BitString::from_bits(&[true, false, false]),
    )
    .unwrap();
    let est_rural = estimator.estimate(&db, &query2).unwrap();
    let estimate = est_urban.fraction + est_rural.fraction;
    let truth = truth_count as f64 / m as f64;

    println!("\nquery: smokes AND NOT inhaled");
    println!("  true fraction      : {truth:.4}");
    println!("  sketch estimate    : {estimate:.4}");
    println!(
        "  95% half-width     : {:.4}",
        est_urban.half_width(0.05) * 2.0
    );
    println!(
        "  Lemma 4.1: P[err > 0.05] <= {:.4}",
        est_urban.lemma41_failure_prob(0.05)
    );
    assert!(
        (estimate - truth).abs() < 0.05,
        "estimate strayed outside the bound band"
    );
    println!("\nok: estimate within the Lemma 4.1 band — no raw bit ever left a user's machine");
}
