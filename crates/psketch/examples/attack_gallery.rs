//! Attack gallery: why hashing and retention replacement leak, and why
//! sketches do not.
//!
//! Recreates §1's partial-knowledge attack on retention replacement, §3's
//! dictionary attack on hashing, and then turns the *same* attackers loose
//! on sketches — where the exact posterior provably stays near the prior.
//!
//! Run: `cargo run --release --example attack_gallery`

use psketch::baselines::{
    dictionary_attack, retention_posterior, sketch_posterior, HashPublisher, RetentionChannel,
};
use psketch::core::theory::privacy_ratio_bound;
use psketch::{BitString, BitSubset, GlobalKey, Prg, Profile, SketchParams, Sketcher, UserId};
use rand::SeedableRng;

fn main() {
    let mut rng = Prg::seed_from_u64(99);

    println!("=== 1. Hashing (§3 strawman) vs a dictionary attacker ===");
    let publisher = HashPublisher::new(&GlobalKey::from_seed(5));
    let subset = BitSubset::range(0, 7);
    let secret = BitString::from_u64(42, 7);
    let mut profile = Profile::zeros(7);
    for (i, b) in secret.iter().enumerate() {
        profile.set(i, b);
    }
    let published = publisher.publish(UserId(1), &subset, &profile);
    let candidates: Vec<BitString> = (0..100u64).map(|v| BitString::from_u64(v, 7)).collect();
    let recovered = dictionary_attack(&publisher, UserId(1), &subset, published, &candidates);
    println!("Bob knows Alice's value is one of 100 candidates.");
    println!("published hash: {published:#018x}");
    println!("recovered: {recovered:?}  <- exact recovery\n");

    println!("=== 2. Retention replacement vs the intro's partial-knowledge attack ===");
    let channel = RetentionChannel::new(0.5, 10).unwrap();
    let cand_a = vec![1u64, 1, 2, 2, 3, 3];
    let cand_b = vec![4u64, 4, 5, 5, 6, 6];
    let observed = channel.perturb_sequence(&cand_a, &mut rng);
    let posterior = retention_posterior(&channel, &observed, &[cand_a.clone(), cand_b.clone()]);
    println!("true value  <1,1,2,2,3,3>, alternative <4,4,5,5,6,6>");
    println!("observed    {observed:?}");
    println!(
        "posterior   [{:.3}, {:.3}]  <- 'virtually reveals the exact private data'\n",
        posterior[0], posterior[1]
    );

    println!("=== 3. The same 2-candidate attacker vs a sketch ===");
    let p = 0.45;
    let params = SketchParams::with_sip(p, 6, GlobalKey::from_seed(6)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset6 = BitSubset::range(0, 6);
    let ca = BitString::from_u64(17, 6);
    let cb = BitString::from_u64(44, 6);
    let bound = privacy_ratio_bound(p);
    println!(
        "p = {p}: Lemma 3.3 caps any posterior at bound/(bound+1) = {:.3}",
        bound / (bound + 1.0)
    );
    let mut worst: f64 = 0.0;
    let mut total = 0.0;
    let trials = 20;
    for t in 0..trials {
        let id = UserId(t);
        let run = sketcher
            .sketch_value_with_stats(id, &subset6, &ca, &mut rng)
            .unwrap();
        let post = sketch_posterior(&params, id, &subset6, run.sketch, &[ca.clone(), cb.clone()]);
        worst = worst.max(post[0]);
        total += post[0];
        if t < 5 {
            println!(
                "  sketch {:>2}: posterior on truth = {:.3}",
                run.sketch.key, post[0]
            );
        }
    }
    println!("  …");
    println!(
        "over {trials} fresh sketches: mean posterior {:.3}, worst {:.3} (cap {:.3})",
        total / f64::from(trials as u32),
        worst,
        bound / (bound + 1.0)
    );
    println!("\nok: the attacker that broke both baselines learns almost nothing from a sketch");
}
