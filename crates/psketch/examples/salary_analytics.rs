//! Salary analytics: §4.1 on non-binary data.
//!
//! Integer attributes (8-bit salary, 7-bit age) are sketched bit-wise and
//! prefix-wise; the analyst computes a mean, an interval frequency
//! ("salary below c"), a combined constraint and a conditional average —
//! each compiled to a handful of conjunctive queries exactly as §4.1
//! prescribes.
//!
//! Run: `cargo run --release --example salary_analytics`

use psketch::queries::{
    conditional_sum_query_inclusive, eq_and_less_than, interval_required_subsets, less_equal_query,
    mean_query, mean_required_subsets, QueryEngine,
};
use psketch::{BitSubset, GlobalKey, Prg, SketchParams, Sketcher};
use psketch_data::DemographicsModel;
use rand::SeedableRng;

fn main() {
    let m = 80_000;
    let (model, salary, age) = DemographicsModel::salary_age();
    let mut rng = Prg::seed_from_u64(11);
    let pop = model.generate(m, &mut rng);
    println!("population: {m} users, salary (8-bit, skewed) + age (7-bit, bell)\n");

    let params = SketchParams::with_sip(0.25, 10, GlobalKey::from_seed(3)).unwrap();
    let sketcher = Sketcher::new(params);
    let engine = QueryEngine::new(params);
    let db = psketch::SketchDb::new();

    // The coordinator announces which subsets to sketch: every salary/age
    // bit, every salary prefix, and the merged subsets the combined
    // queries need.
    let combined_q = eq_and_less_than(&salary, 25, &age, 100);
    let conditional_num = conditional_sum_query_inclusive(&salary, 60, &age);
    let mut subsets: Vec<BitSubset> = Vec::new();
    subsets.extend(mean_required_subsets(&salary));
    subsets.extend(mean_required_subsets(&age));
    subsets.extend(interval_required_subsets(&salary));
    subsets.extend(combined_q.required_subsets());
    subsets.extend(conditional_num.required_subsets());
    subsets.sort();
    subsets.dedup();
    println!("each user sketches {} subsets", subsets.len());
    pop.publish_all(&sketcher, &subsets, &db, &mut rng).unwrap();
    println!("database holds {} sketches\n", db.total_records());

    // Mean salary: 8 single-bit queries.
    let lq = mean_query(&salary);
    let ans = engine.linear(&db, &lq).unwrap();
    println!(
        "mean(salary):  truth {:8.2}   estimate {:8.2}   ({} queries)",
        pop.true_mean(&salary),
        ans.value,
        ans.queries_used
    );

    // Interval: freq(salary <= 60) — popcount(60)+1 queries.
    let lq = less_equal_query(&salary, 60);
    let ans = engine.linear(&db, &lq).unwrap();
    let truth = pop.true_fraction_by(|p| salary.read(p) <= 60);
    println!(
        "P[salary<=60]: truth {truth:8.4}   estimate {:8.4}   ({} queries)",
        ans.value, ans.queries_used
    );

    // Combined: freq(salary = 25 AND age < 100).
    let ans = engine.linear(&db, &combined_q).unwrap();
    let truth = pop.true_fraction_by(|p| salary.read(p) == 25 && age.read(p) < 100);
    println!(
        "P[sal=25,age<100]: truth {truth:.4}   estimate {:.4}   ({} queries)",
        ans.value, ans.queries_used
    );

    // Conditional mean: avg(age | salary <= 60) as a ratio query.
    let den = less_equal_query(&salary, 60);
    let est = engine.ratio(&db, &conditional_num, &den).unwrap().unwrap();
    let truth = pop.true_conditional_mean(&salary, 60, &age).unwrap();
    println!("avg(age | salary<=60): truth {truth:8.2}   estimate {est:8.2}");

    println!("\nok: the whole §4.1 query menu ran off one set of published sketches");
}
