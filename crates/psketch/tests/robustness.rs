//! Failure injection and fuzz-style robustness: malformed wire data,
//! mismatched parameters and hostile inputs must surface as typed errors,
//! never as panics or silent corruption.

use proptest::prelude::*;
use psketch::core::codec::decode_bundle;
use psketch::protocol::{Announcement, AnnouncementBuilder, Coordinator, UserAgent};
use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, GlobalKey, Prg, Profile,
    SketchDb, SketchParams, Sketcher, UserId,
};
use rand::SeedableRng;

proptest! {
    /// Decoding arbitrary bytes never panics; it returns Ok or a codec
    /// error.
    #[test]
    fn decode_bundle_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_bundle(&bytes);
    }

    /// Submissions with arbitrary bundles never panic the coordinator.
    #[test]
    fn coordinator_survives_arbitrary_submissions(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        skipped in proptest::collection::vec(any::<u32>(), 0..4),
        db_id in any::<u64>(),
    ) {
        let announcement = AnnouncementBuilder::new(5, 0.3, 1_000, 1e-6)
            .global_key(*GlobalKey::from_seed(1).as_bytes())
            .subset(BitSubset::single(0))
            .build()
            .unwrap();
        let coordinator = Coordinator::new(announcement);
        let submission = psketch::protocol::Submission {
            user: UserId(1),
            database_id: db_id,
            bundle: bytes,
            skipped,
        };
        // Must not panic; almost always an error, occasionally valid.
        let _ = coordinator.accept(&submission);
    }
}

#[test]
fn announcement_with_hostile_parameters_is_rejected_not_trusted() {
    // A malicious coordinator announcing p >= 1/2 (no privacy) or p <= 0
    // must be refused by every agent before any data-dependent work.
    for bad_p in [0.0f64, 0.5, 0.9, -1.0, f64::NAN] {
        let ann = Announcement {
            database_id: 1,
            p: bad_p,
            sketch_bits: 10,
            global_key: *GlobalKey::from_seed(1).as_bytes(),
            subsets: vec![BitSubset::single(0)],
        };
        let mut agent = UserAgent::new(UserId(1), Profile::zeros(1), 0.3, 100.0);
        assert!(!agent.can_participate(&ann), "p = {bad_p} must be refused");
        let mut rng = Prg::seed_from_u64(2);
        assert!(agent.participate(&ann, &mut rng).is_err());
    }
}

#[test]
fn mismatched_analyst_key_degrades_to_noise_not_corruption() {
    // An analyst with the wrong global key cannot decode anything useful:
    // estimates collapse to ≈ 0 signal (raw rate ≈ p against every
    // value), but nothing panics and sample accounting stays correct.
    let m = 15_000u64;
    let good = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(10)).unwrap();
    let wrong = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(11)).unwrap();
    let sketcher = Sketcher::new(good);
    let subset = BitSubset::range(0, 3);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(12);
    for i in 0..m {
        let profile = Profile::from_bits(&[true, true, true]);
        let s = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i), s);
    }
    let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true, true, true])).unwrap();
    let honest = ConjunctiveEstimator::new(good).estimate(&db, &q).unwrap();
    let confused = ConjunctiveEstimator::new(wrong).estimate(&db, &q).unwrap();
    assert!(honest.fraction > 0.95, "honest analyst sees the signal");
    assert!(
        confused.fraction.abs() < 0.05,
        "wrong-key analyst sees ≈ nothing: {}",
        confused.fraction
    );
    assert_eq!(confused.sample_size, m as usize);
}

#[test]
fn estimator_with_wrong_bias_is_wrong_predictably_not_panicky() {
    // Same key, different p on the analyst side: a deterministic affine
    // distortion, never a crash.
    let m = 10_000u64;
    let publish_params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(20)).unwrap();
    let analyst_params = SketchParams::with_sip(0.2, 10, GlobalKey::from_seed(20)).unwrap();
    let sketcher = Sketcher::new(publish_params);
    let subset = BitSubset::single(0);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(21);
    for i in 0..m {
        let profile = Profile::from_bits(&[true]);
        let s = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i), s);
    }
    let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true])).unwrap();
    let est = ConjunctiveEstimator::new(analyst_params)
        .estimate(&db, &q)
        .unwrap();
    // The analyst's H thresholds at 0.2 instead of 0.3, so on published
    // keys (whose PRF output is uniform on [0, 0.3) with mass 0.7 and on
    // [0.3, 1) with mass 0.3) the raw rate is 0.7 · (0.2/0.3) ≈ 0.4667;
    // the p = 0.2 inversion then yields (0.4667 − 0.2)/0.6 ≈ 0.444.
    assert!(
        (est.fraction - 0.4444).abs() < 0.03,
        "distorted exactly as the threshold analysis predicts: {}",
        est.fraction
    );
}

#[test]
fn key_space_of_two_still_round_trips_queries() {
    // The degenerate 1-bit sketch: failures happen, but accepted sketches
    // still answer queries unbiasedly.
    let params = SketchParams::with_sip(0.3, 1, GlobalKey::from_seed(30)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::single(0);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(31);
    let m = 40_000u64;
    let mut published = 0u64;
    for i in 0..m {
        let profile = Profile::from_bits(&[i % 2 == 0]);
        if let Ok(s) = sketcher.sketch(UserId(i), &profile, &subset, &mut rng) {
            db.insert(subset.clone(), UserId(i), s);
            published += 1;
        }
    }
    assert!(published > m / 2, "most sketches should succeed");
    let q = ConjunctiveQuery::new(subset, BitString::from_bits(&[true])).unwrap();
    let est = ConjunctiveEstimator::new(params).estimate(&db, &q).unwrap();
    // Survivors of Algorithm 1 failure are value-independent at ℓ = 1?
    // Not exactly — failure correlates with the H table, not the value —
    // so allow a loose band around 0.5.
    assert!(
        (est.fraction - 0.5).abs() < 0.1,
        "tiny key space estimate {} drifted",
        est.fraction
    );
}

#[test]
fn duplicate_positions_and_widths_are_rejected_everywhere() {
    assert!(BitSubset::new(vec![3, 3]).is_err());
    let s = BitSubset::new(vec![0, 1]).unwrap();
    assert!(ConjunctiveQuery::new(s, BitString::from_bits(&[true])).is_err());
    assert!(SketchParams::with_sip(0.3, 0, GlobalKey::from_seed(1)).is_err());
    assert!(SketchParams::with_sip(0.3, 31, GlobalKey::from_seed(1)).is_err());
}
