//! The paper's comparative claims as integration tests: sketches beat
//! randomized response on wide conjunctions; retention replacement and
//! hashing lose to attackers that sketches survive.

use psketch::baselines::{randomize_profiles, RetentionChannel, WarnerChannel};
use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, GlobalKey, Prg, SketchDb,
    SketchParams, Sketcher,
};
use psketch_data::PlantedConjunction;
use rand::SeedableRng;

/// RMS error over repetitions for (sketch, rr-product) at width k.
fn rms_pair(m: usize, k: usize, p: f64, reps: u64) -> (f64, f64) {
    let mut sq_sketch = 0.0;
    let mut sq_rr = 0.0;
    for rep in 0..reps {
        let mut rng = Prg::seed_from_u64(1000 + rep);
        let gen = PlantedConjunction::all_ones(k, k, 0.5);
        let pop = gen.generate(m, &mut rng);
        let truth = pop.true_fraction(&gen.subset, &gen.value);

        let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(rep)).unwrap();
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        pop.publish(&sketcher, &gen.subset, &db, &mut rng).unwrap();
        let est = ConjunctiveEstimator::new(params)
            .estimate(
                &db,
                &ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).unwrap(),
            )
            .unwrap()
            .fraction;
        sq_sketch += (est - truth) * (est - truth);

        let profiles: Vec<_> = (0..pop.len()).map(|i| pop.profile(i).clone()).collect();
        let rr = randomize_profiles(p, profiles, &mut rng).unwrap();
        let rr_est = rr.product_estimate(&gen.subset, &gen.value).unwrap();
        sq_rr += (rr_est - truth) * (rr_est - truth);
    }
    (
        (sq_sketch / reps as f64).sqrt(),
        (sq_rr / reps as f64).sqrt(),
    )
}

#[test]
fn sketches_beat_randomized_response_on_wide_conjunctions() {
    let (sketch_err, rr_err) = rms_pair(4_000, 12, 0.3, 6);
    assert!(
        rr_err > 5.0 * sketch_err,
        "at width 12 RR should be far worse: sketch {sketch_err}, rr {rr_err}"
    );
    // And on width 1 they are comparable — RR is the paper's special case.
    let (s1, r1) = rms_pair(4_000, 1, 0.3, 6);
    assert!(
        r1 < 3.0 * s1 + 0.02,
        "at width 1 the methods should be comparable: {s1} vs {r1}"
    );
}

#[test]
fn warner_is_the_single_bit_special_case() {
    // A single-bit sketch and a Warner flip answer the same query with
    // similar accuracy at the same p.
    let p = 0.3;
    let m = 30_000u64;
    let mut rng = Prg::seed_from_u64(77);
    let channel = WarnerChannel::new(p).unwrap();
    let true_fraction = 0.62;
    let cutoff = (true_fraction * m as f64) as u64;

    // Warner path.
    let ones = (0..m)
        .filter(|&i| channel.flip_bit(i < cutoff, &mut rng))
        .count();
    let warner_est = channel.estimate_single_bit(ones as f64 / m as f64);

    // Sketch path on the same population.
    let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(8)).unwrap();
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let subset = BitSubset::single(0);
    for i in 0..m {
        let profile = psketch::Profile::from_bits(&[i < cutoff]);
        let s = sketcher
            .sketch(psketch::UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), psketch::UserId(i), s);
    }
    let sketch_est = ConjunctiveEstimator::new(params)
        .estimate(
            &db,
            &ConjunctiveQuery::new(subset, BitString::from_bits(&[true])).unwrap(),
        )
        .unwrap()
        .fraction;

    assert!(
        (warner_est - true_fraction).abs() < 0.02,
        "warner {warner_est}"
    );
    assert!(
        (sketch_est - true_fraction).abs() < 0.02,
        "sketch {sketch_est}"
    );
}

#[test]
fn retention_privacy_ratio_dwarfs_sketch_bound() {
    use psketch::core::theory::privacy_ratio_bound;
    // At comparable utility (rho = 0.5 keeps half the signal; p = 0.25
    // keeps denominator 0.5), retention's worst-case ratio grows with the
    // domain while the sketch bound is a constant.
    let sketch_bound = privacy_ratio_bound(0.25); // 81
    let retention = RetentionChannel::new(0.5, 1 << 16).unwrap();
    assert!(retention.privacy_ratio() > 800.0 * sketch_bound);
}
