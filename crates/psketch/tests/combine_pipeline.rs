//! Appendix F across crates: sketch several subsets, glue them into
//! union-conjunction and disjunction answers, and stress the transition
//! system's invariants property-style.

use proptest::prelude::*;
use psketch::core::{
    recover_from_bits, transition_condition_number, transition_matrix, CombinedEstimator,
};
use psketch::{
    BitString, BitSubset, ConjunctiveQuery, GlobalKey, Prg, Profile, SketchDb, SketchParams,
    Sketcher, UserId,
};
use rand::{RngExt, SeedableRng};

#[test]
fn union_conjunction_and_disjunction_from_glued_sketches() {
    let p = 0.25;
    let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(13)).unwrap();
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let b1 = BitSubset::range(0, 2);
    let b2 = BitSubset::range(2, 2);
    let b3 = BitSubset::range(4, 2);
    let mut rng = Prg::seed_from_u64(14);
    let m = 30_000u64;
    // 25% satisfy all three (111111), 25% only b1, 50% none.
    let mut all3 = 0u64;
    let mut any = 0u64;
    for i in 0..m {
        let profile = match i % 4 {
            0 => {
                all3 += 1;
                any += 1;
                Profile::from_bits(&[true; 6])
            }
            1 => {
                any += 1;
                Profile::from_bits(&[true, true, false, false, false, false])
            }
            _ => Profile::from_bits(&[false; 6]),
        };
        for b in [&b1, &b2, &b3] {
            let s = sketcher.sketch(UserId(i), &profile, b, &mut rng).unwrap();
            db.insert(b.clone(), UserId(i), s);
        }
    }
    let estimator = CombinedEstimator::new(params);
    let components: Vec<ConjunctiveQuery> = [&b1, &b2, &b3]
        .iter()
        .map(|b| ConjunctiveQuery::new((*b).clone(), BitString::from_bits(&[true, true])).unwrap())
        .collect();
    let est = estimator.estimate(&db, &components).unwrap();
    let truth_all = all3 as f64 / m as f64;
    let truth_any = any as f64 / m as f64;
    assert!(
        (est.all_satisfied() - truth_all).abs() < 0.04,
        "conjunction {} vs {truth_all}",
        est.all_satisfied()
    );
    assert!(
        (est.disjunction() - truth_any).abs() < 0.04,
        "disjunction {} vs {truth_any}",
        est.disjunction()
    );
    // §4.1's "exactly l of k" reading is available too.
    assert!(
        (est.exactly(1) - 0.25).abs() < 0.05,
        "exactly-one {} vs 0.25",
        est.exactly(1)
    );
}

proptest! {
    /// Transition matrices are column-stochastic for any (k, p).
    #[test]
    fn transition_matrix_is_stochastic(k in 1usize..10, p in 0.0f64..=1.0) {
        let v = transition_matrix(k, p);
        for l in 0..=k {
            let col: f64 = (0..=k).map(|lp| v[(lp, l)]).sum();
            prop_assert!((col - 1.0).abs() < 1e-9);
        }
    }

    /// Noiseless recovery is exact for arbitrary bit histograms.
    #[test]
    fn noiseless_recovery_roundtrips(
        rows in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 4),
            1..60,
        ),
    ) {
        let est = recover_from_bits(4, 1e-12, rows.clone()).unwrap();
        for l in 0..=4usize {
            let truth = rows.iter().filter(|r| r.iter().filter(|&&b| b).count() == l).count()
                as f64 / rows.len() as f64;
            prop_assert!((est.by_ones[l] - truth).abs() < 1e-6);
        }
    }

    /// The condition number grows monotonically towards p = 1/2.
    #[test]
    fn conditioning_monotone_in_p(k in 2usize..8) {
        let k1 = transition_condition_number(k, 0.1);
        let k2 = transition_condition_number(k, 0.3);
        let k3 = transition_condition_number(k, 0.45);
        prop_assert!(k1 <= k2 && k2 <= k3);
    }
}

#[test]
fn statistical_recovery_with_noise() {
    // Flip 3 bits at p = 0.15 and recover a planted histogram.
    let p = 0.15;
    let mut rng = Prg::seed_from_u64(15);
    let m = 50_000;
    let rows: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let truth = match i % 5 {
                0 | 1 => vec![true, true, true],
                2 => vec![true, false, false],
                _ => vec![false, false, false],
            };
            truth
                .into_iter()
                .map(|b| b ^ (rng.random::<f64>() < p))
                .collect()
        })
        .collect();
    let est = recover_from_bits(3, p, rows).unwrap();
    assert!((est.by_ones[3] - 0.4).abs() < 0.02);
    assert!((est.by_ones[1] - 0.2).abs() < 0.02);
    assert!((est.by_ones[0] - 0.4).abs() < 0.02);
}
