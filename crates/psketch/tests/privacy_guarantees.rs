//! Cross-crate privacy assertions: the exact analysis, the live sketcher,
//! the accountant and the attacker must tell one consistent story.

use psketch::baselines::sketch_posterior;
use psketch::core::exact::{max_privacy_ratio, outcome_probs};
use psketch::core::theory::privacy_ratio_bound;
use psketch::core::PrivacyAccountant;
use psketch::{BitString, BitSubset, GlobalKey, Prg, SketchParams, Sketcher, UserId};
use rand::SeedableRng;

#[test]
fn exact_ratio_below_bound_for_a_parameter_sweep() {
    for &p in &[0.05f64, 0.2, 0.3, 0.45, 0.49] {
        let r = (p / (1.0 - p)).powi(2);
        for bits in 1..=10u8 {
            let ratio = max_privacy_ratio(1 << bits, r);
            assert!(
                ratio <= privacy_ratio_bound(p) * (1.0 + 1e-9),
                "p={p} bits={bits}: {ratio}"
            );
        }
    }
}

#[test]
fn posterior_cap_holds_for_every_candidate_pair() {
    // Exhaustive over all pairs of 3-bit candidates and all sketch keys:
    // the exact posterior from any observation is capped by the bound.
    let p = 0.4;
    let params = SketchParams::with_sip(p, 4, GlobalKey::from_seed(21)).unwrap();
    let subset = BitSubset::range(0, 3);
    let bound = privacy_ratio_bound(p);
    let cap = bound / (bound + 1.0);
    let id = UserId(77);
    for a in 0..8u64 {
        for b in 0..8u64 {
            if a == b {
                continue;
            }
            let ca = BitString::from_u64(a, 3);
            let cb = BitString::from_u64(b, 3);
            for key in 0..16u64 {
                let post = sketch_posterior(
                    &params,
                    id,
                    &subset,
                    psketch::Sketch { key },
                    &[ca.clone(), cb.clone()],
                );
                assert!(
                    post[0] <= cap + 1e-9,
                    "a={a} b={b} key={key}: posterior {} > cap {cap}",
                    post[0]
                );
            }
        }
    }
}

#[test]
fn privacy_is_independent_of_the_global_key() {
    // Lemma 3.3 holds for adversarial H: the empirical worst ratio must
    // respect the bound under *every* key we try.
    let p = 0.35;
    let subset = BitSubset::range(0, 2);
    let d1 = BitString::from_bits(&[false, false]);
    let d2 = BitString::from_bits(&[true, true]);
    let bound = privacy_ratio_bound(p);
    for key_seed in 0..5u64 {
        let params = SketchParams::with_sip(p, 3, GlobalKey::from_seed(key_seed)).unwrap();
        let sketcher = Sketcher::new(params);
        let mut rng = Prg::seed_from_u64(100 + key_seed);
        let trials = 30_000;
        let l = params.key_space() as usize;
        let (mut c1, mut c2) = (vec![0u64; l], vec![0u64; l]);
        for _ in 0..trials {
            let id = UserId(5);
            // ℓ = 3 keeps the key space tiny enough to occasionally
            // exhaust (Algorithm 1's legitimate failure outcome); the
            // ratio bound is over published sketches.
            if let Ok(run) = sketcher.sketch_value_with_stats(id, &subset, &d1, &mut rng) {
                c1[run.sketch.key as usize] += 1;
            }
            if let Ok(run) = sketcher.sketch_value_with_stats(id, &subset, &d2, &mut rng) {
                c2[run.sketch.key as usize] += 1;
            }
        }
        for s in 0..l {
            if c1[s] > 100 && c2[s] > 100 {
                let ratio = c1[s] as f64 / c2[s] as f64;
                assert!(
                    ratio < bound * 1.3 && ratio > 1.0 / (bound * 1.3),
                    "key_seed {key_seed}, sketch {s}: ratio {ratio} vs bound {bound}"
                );
            }
        }
    }
}

#[test]
fn accountant_and_theory_agree() {
    let p = 0.47;
    let mut acct = PrivacyAccountant::new(p, 20.0);
    for l in 1..=5u32 {
        acct.charge(1).unwrap();
        let expected = privacy_ratio_bound(p).powi(l as i32) - 1.0;
        assert!(
            (acct.spent_epsilon() - expected).abs() < 1e-9,
            "l={l}: {} vs {expected}",
            acct.spent_epsilon()
        );
    }
}

#[test]
fn outcome_probabilities_are_consistent_with_failure_theory() {
    use psketch::core::theory::failure_prob_exact;
    // For the all-zero table, the exact module's failure probability must
    // match theory::failure_prob_exact *conditioned on the table*: theory
    // averages over H, exact fixes the table. All-zero table probability
    // over H is (1-p)^L; failure given all-zero is (1-r)^L. Product equals
    // the theory formula ((1-p)(1-r))^L.
    let p = 0.3f64;
    let r = (p / (1.0 - p)).powi(2);
    for bits in 1..=6u8 {
        let l = 1u64 << bits;
        let failure_given_all_zero = outcome_probs(l, 0, r).failure;
        let all_zero_prob = (1.0 - p).powi(l as i32);
        let combined = failure_given_all_zero * all_zero_prob;
        let theory = failure_prob_exact(bits, p);
        assert!(
            (combined - theory).abs() < 1e-12,
            "bits={bits}: {combined} vs {theory}"
        );
    }
}
