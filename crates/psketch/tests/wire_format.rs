//! The published artifact end to end: sketches survive the wire format
//! and decode to something the estimator accepts unchanged.

use proptest::prelude::*;
use psketch::core::codec::{bundle_size_bytes, decode_bundle, encode_bundle};
use psketch::core::theory::min_sketch_bits;
use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, GlobalKey, Prg, SketchDb,
    SketchParams, Sketcher, UserId,
};
use psketch_data::PlantedConjunction;
use rand::SeedableRng;

#[test]
fn estimates_survive_an_encode_decode_roundtrip() {
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(5)).unwrap();
    let mut rng = Prg::seed_from_u64(6);
    let gen = PlantedConjunction::all_ones(4, 4, 0.4);
    let pop = gen.generate(10_000, &mut rng);
    let sketcher = Sketcher::new(params);

    // Users publish *bytes*; the analyst decodes and rebuilds the db.
    let mut wire: Vec<(UserId, Vec<u8>)> = Vec::new();
    for (id, profile) in pop.iter() {
        let sketch = sketcher.sketch(id, profile, &gen.subset, &mut rng).unwrap();
        let bytes = encode_bundle(params.sketch_bits(), &[sketch]);
        wire.push((id, bytes.to_vec()));
    }

    let db = SketchDb::new();
    for (id, bytes) in &wire {
        let (bits, sketches) = decode_bundle(bytes).unwrap();
        assert_eq!(bits, params.sketch_bits());
        assert_eq!(sketches.len(), 1);
        db.insert(gen.subset.clone(), *id, sketches[0]);
    }

    let estimator = ConjunctiveEstimator::new(params);
    let q = ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).unwrap();
    let est = estimator.estimate(&db, &q).unwrap();
    let truth = pop.true_fraction(&gen.subset, &gen.value);
    assert!((est.fraction - truth).abs() < 0.03);

    // And the paper's size claim holds on the wire.
    let bytes_per_user = wire[0].1.len();
    assert_eq!(bytes_per_user, bundle_size_bytes(10, 1));
    assert!(
        bytes_per_user <= 9,
        "one sketch should cost ≤ 9 bytes on the wire"
    );
}

#[test]
fn lemma31_length_is_enough_in_practice() {
    // Size the sketch for (M, tau) with Lemma 3.1 and verify zero failures
    // across the whole population.
    let m = 20_000u64;
    let p = 0.3;
    let bits = min_sketch_bits(m, 1e-6, p);
    let params = SketchParams::with_sip(p, bits, GlobalKey::from_seed(9)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    let mut rng = Prg::seed_from_u64(10);
    let failures = (0..m)
        .filter(|&i| {
            sketcher
                .sketch_value_with_stats(UserId(i), &subset, &value, &mut rng)
                .is_err()
        })
        .count();
    assert_eq!(
        failures, 0,
        "Lemma 3.1 length must avoid failures (p < 1e-6)"
    );
}

proptest! {
    /// Arbitrary bundles round-trip across crate boundaries.
    #[test]
    fn bundles_roundtrip(
        bits in 1u8..=20,
        keys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let sketches: Vec<psketch::Sketch> = keys
            .iter()
            .map(|&k| psketch::Sketch { key: k & ((1u64 << bits) - 1) })
            .collect();
        let encoded = encode_bundle(bits, &sketches);
        prop_assert_eq!(encoded.len(), bundle_size_bytes(bits, sketches.len()));
        let (decoded_bits, decoded) = decode_bundle(&encoded).unwrap();
        prop_assert_eq!(decoded_bits, bits);
        prop_assert_eq!(decoded, sketches);
    }
}
