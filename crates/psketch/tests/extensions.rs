//! Cross-crate tests for the Conclusions extensions and the protocol
//! layer: function sketches keep the privacy bound, advanced composition
//! delivers its quadratic gain, and the deployment round is airtight.

use psketch::core::composition::{epsilon_advanced, max_sketches_advanced, max_sketches_basic};
use psketch::core::theory::privacy_ratio_bound;
use psketch::core::{FunctionEstimator, FunctionId, FunctionRecord, FunctionSketcher};
use psketch::protocol::{AnnouncementBuilder, Coordinator, UserAgent};
use psketch::{BitSubset, GlobalKey, Prg, Profile, SketchParams, UserId};
use rand::{RngExt, SeedableRng};

#[test]
fn function_sketches_respect_the_privacy_ratio() {
    // Empirical Pr[s | f(d) = a] vs Pr[s | f(d) = b] stays within the
    // Lemma 3.3 bound — the Conclusions' "same privacy guarantees apply".
    let p = 0.4;
    let params = SketchParams::with_sip(p, 3, GlobalKey::from_seed(31)).unwrap();
    let sketcher = FunctionSketcher::new(params);
    let fid = FunctionId::new(5, 2);
    let id = UserId(11);
    let mut rng = Prg::seed_from_u64(32);
    let l = params.key_space() as usize;
    let trials = 40_000;
    let mut counts = [vec![0u64; l], vec![0u64; l]];
    for (slot, output) in [(0usize, 1u64), (1, 2)] {
        for _ in 0..trials {
            // At ℓ = 3 the key space is tiny; Algorithm 1 may legitimately
            // exhaust it ("report failure and stop") — the ratio bound
            // applies to the published sketches.
            match sketcher.sketch(id, &Profile::zeros(1), fid, |_| output, &mut rng) {
                Ok(s) => counts[slot][s.key as usize] += 1,
                Err(psketch::Error::KeySpaceExhausted { .. }) => {}
                Err(e) => panic!("unexpected sketching error: {e}"),
            }
        }
    }
    let bound = privacy_ratio_bound(p);
    for (key, (&a, &b)) in counts[0].iter().zip(counts[1].iter()).enumerate() {
        if a > 200 && b > 200 {
            let ratio = a as f64 / b as f64;
            assert!(
                ratio < bound * 1.3 && ratio > 1.0 / (bound * 1.3),
                "key {key}: ratio {ratio} breaks bound {bound}"
            );
        }
    }
}

#[test]
fn advanced_composition_budget_is_honored_end_to_end() {
    // Plan a release schedule under advanced composition and verify the
    // achieved epsilon really stays under budget at the boundary count.
    let (eps, delta) = (1.0, 1e-9);
    for &p in &[0.4995f64, 0.49995] {
        let l_adv = max_sketches_advanced(p, eps, delta);
        let l_basic = max_sketches_basic(p, eps);
        assert!(l_adv > l_basic, "p={p}: advanced should allow more");
        assert!(epsilon_advanced(p, l_adv, delta) <= eps);
        assert!(epsilon_advanced(p, l_adv + 1, delta) > eps);
    }
    // The quadratic law across a decade of eps0.
    let a1 = f64::from(max_sketches_advanced(0.4995, eps, delta));
    let a2 = f64::from(max_sketches_advanced(0.49995, eps, delta));
    assert!(
        a2 / a1 > 50.0,
        "expected ~100x more sketches, got {}",
        a2 / a1
    );
}

#[test]
fn protocol_round_is_consistent_with_direct_estimation() {
    // The same population published (a) through the protocol layer and
    // (b) directly into a SketchDb must produce identical estimator
    // behaviour (the wire format is lossless).
    let p = 0.3;
    let m = 6_000u64;
    let subset = BitSubset::new(vec![0, 1]).unwrap();
    let announcement = AnnouncementBuilder::new(9, p, m, 1e-6)
        .global_key(*GlobalKey::from_seed(77).as_bytes())
        .subset(subset.clone())
        .build()
        .unwrap();
    let params = announcement.validate().unwrap();
    let coordinator = Coordinator::new(announcement.clone());
    let direct_db = psketch::SketchDb::new();

    let mut rng = Prg::seed_from_u64(78);
    for i in 0..m {
        let profile = Profile::from_bits(&[i % 3 == 0, rng.random()]);
        let mut agent = UserAgent::new(UserId(i), profile, p, 1e6);
        let submission = agent.participate(&announcement, &mut rng).unwrap();
        // Decode the same bundle into the direct database.
        for (sub, sketch) in submission.decode(&announcement).unwrap() {
            direct_db.insert(sub, UserId(i), sketch);
        }
        coordinator.accept(&submission).unwrap();
    }

    let estimator = psketch::ConjunctiveEstimator::new(params);
    let q = psketch::ConjunctiveQuery::new(subset, psketch::BitString::from_bits(&[true, true]))
        .unwrap();
    let via_protocol = estimator.estimate(coordinator.pool(), &q).unwrap();
    let via_direct = estimator.estimate(&direct_db, &q).unwrap();
    assert_eq!(
        via_protocol.raw, via_direct.raw,
        "wire format must be lossless"
    );
    assert_eq!(via_protocol.sample_size, via_direct.sample_size);
}

#[test]
fn function_distribution_estimates_from_protocol_scale_population() {
    // Function sketches + analyst distribution over a real generator.
    let params = SketchParams::with_sip(0.25, 10, GlobalKey::from_seed(41)).unwrap();
    let sketcher = FunctionSketcher::new(params);
    let estimator = FunctionEstimator::new(params);
    let fid = FunctionId::new(8, 2);
    let mut rng = Prg::seed_from_u64(42);
    let m = 25_000u64;
    let f = |profile: &Profile| (profile.bits().count_ones() as u64).min(3);
    let mut records = Vec::new();
    let mut truth = [0u64; 4];
    for i in 0..m {
        let bits: Vec<bool> = (0..6).map(|_| rng.random::<f64>() < 0.25).collect();
        let profile = Profile::from_bits(&bits);
        truth[f(&profile) as usize] += 1;
        let s = sketcher
            .sketch(UserId(i), &profile, fid, f, &mut rng)
            .unwrap();
        records.push(FunctionRecord {
            id: UserId(i),
            sketch: s,
        });
    }
    let dist = estimator.estimate_distribution(fid, &records).unwrap();
    for v in 0..4usize {
        let expected = truth[v] as f64 / m as f64;
        assert!(
            (dist[v].fraction - expected).abs() < 0.025,
            "v={v}: {} vs {expected}",
            dist[v].fraction
        );
    }
    let total: f64 = dist.iter().map(|e| e.fraction).sum();
    assert!((total - 1.0).abs() < 0.05);
}
