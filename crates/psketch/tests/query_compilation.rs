//! The §4.1 compilers against sketches and against ground truth, plus
//! property-based checks that the compilations are semantically exact.

use proptest::prelude::*;
use psketch::queries::{
    eq_and_less_than, less_equal_query, less_than_query, mean_query, range_query, DecisionTree,
};
use psketch::{ConjunctiveQuery, IntField, Profile};

/// Evaluates a linear query against an explicit value population, exactly.
fn exact_eval(lq: &psketch::queries::LinearQuery, profiles: &[Profile]) -> f64 {
    lq.evaluate_with(|q: &ConjunctiveQuery| {
        Ok(profiles
            .iter()
            .filter(|p| p.satisfies(q.subset(), q.value()))
            .count() as f64
            / profiles.len() as f64)
    })
    .unwrap()
}

fn profiles_for(values: &[u64], field: &IntField) -> Vec<Profile> {
    values
        .iter()
        .map(|&v| {
            let mut p = Profile::zeros(field.end() as usize);
            field.write(&mut p, v);
            p
        })
        .collect()
}

proptest! {
    /// mean_query is exact on any population under an exact oracle.
    #[test]
    fn mean_compilation_is_exact(
        values in proptest::collection::vec(0u64..256, 1..40),
    ) {
        let field = IntField::new(0, 8);
        let profiles = profiles_for(&values, &field);
        let got = exact_eval(&mean_query(&field), &profiles);
        let expected = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// Interval compilations are exact for arbitrary thresholds.
    #[test]
    fn interval_compilation_is_exact(
        values in proptest::collection::vec(0u64..64, 1..40),
        c in 0u64..64,
    ) {
        let field = IntField::new(0, 6);
        let profiles = profiles_for(&values, &field);
        let lt = exact_eval(&less_than_query(&field, c), &profiles);
        let le = exact_eval(&less_equal_query(&field, c), &profiles);
        let expected_lt = values.iter().filter(|&&v| v < c).count() as f64 / values.len() as f64;
        let expected_le = values.iter().filter(|&&v| v <= c).count() as f64 / values.len() as f64;
        prop_assert!((lt - expected_lt).abs() < 1e-9);
        prop_assert!((le - expected_le).abs() < 1e-9);
    }

    /// Range queries are exact and consistent with their endpoints.
    #[test]
    fn range_compilation_is_exact(
        values in proptest::collection::vec(0u64..32, 1..40),
        bounds in (0u64..32, 0u64..32),
    ) {
        let (x, y) = bounds;
        let (lo, hi) = (x.min(y), x.max(y));
        let field = IntField::new(0, 5);
        let profiles = profiles_for(&values, &field);
        let got = exact_eval(&range_query(&field, lo, hi), &profiles);
        let expected = values.iter().filter(|&&v| v >= lo && v <= hi).count() as f64
            / values.len() as f64;
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// Combined equality+interval queries are exact.
    #[test]
    fn combined_compilation_is_exact(
        pairs in proptest::collection::vec((0u64..16, 0u64..16), 1..30),
        c in 0u64..16,
        d in 0u64..16,
    ) {
        let a = IntField::new(0, 4);
        let b = IntField::new(4, 4);
        let profiles: Vec<Profile> = pairs
            .iter()
            .map(|&(va, vb)| {
                let mut p = Profile::zeros(8);
                a.write(&mut p, va);
                b.write(&mut p, vb);
                p
            })
            .collect();
        let got = exact_eval(&eq_and_less_than(&a, c, &b, d), &profiles);
        let expected = pairs.iter().filter(|&&(x, y)| x == c && y < d).count() as f64
            / pairs.len() as f64;
        prop_assert!((got - expected).abs() < 1e-9);
    }
}

#[test]
fn decision_tree_linear_query_equals_direct_evaluation() {
    // A fixed tree over 4 attributes, checked on the full profile cube.
    let tree = DecisionTree::split(
        0,
        DecisionTree::split(1, DecisionTree::Leaf(true), DecisionTree::Leaf(false)),
        DecisionTree::split(
            2,
            DecisionTree::Leaf(false),
            DecisionTree::split(3, DecisionTree::Leaf(true), DecisionTree::Leaf(true)),
        ),
    );
    let profiles: Vec<Profile> = (0..16u64)
        .map(|v| Profile::from_bits(&[v & 1 == 1, v & 2 == 2, v & 4 == 4, v & 8 == 8]))
        .collect();
    let got = exact_eval(&tree.to_linear_query(), &profiles);
    let expected = profiles.iter().filter(|p| tree.evaluate(p)).count() as f64 / 16.0;
    assert!((got - expected).abs() < 1e-12);
}
