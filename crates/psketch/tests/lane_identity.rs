//! Property tests: every supported PRF lane width computes estimates
//! float-bit-identical to the scalar reference, for every query family
//! the engine executes.
//!
//! The multi-lane SipHash evaluator (`psketch::prf::lanes`) is a pure
//! throughput knob — the acceptance bar here is not statistical closeness
//! but exact equality of every answer bit at widths 1 (scalar oracle), 4,
//! 8 and auto-probe, over random populations, biases and keys. The sweep
//! drives the full analyst stack: direct conjunctive estimates, the
//! one-pass distribution scan, and compiled term plans (means, intervals,
//! DNF, moments) through [`QueryEngine::execute_plans`].

use proptest::prelude::*;
use psketch::prf::Prg;
use psketch::queries::{dnf_plan, less_than_plan, mean_plan, moment_plan, QueryEngine, TermPlan};
use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, IntField, Profile, SketchDb,
    SketchParams, Sketcher, UserId,
};
use rand::SeedableRng;

/// Lane widths under test: the scalar oracle first, then each SIMD width,
/// then auto-probe (whatever this host selects).
const SWEEP: [usize; 4] = [1, 4, 8, 0];

/// Builds a random 2-attribute database sketched under the singleton and
/// pair subsets — enough coverage for every plan family below.
fn build_db(p: f64, profile_seeds: &[u64], rng_seed: u64) -> (SketchParams, SketchDb) {
    let params =
        SketchParams::with_sip(p, 10, psketch::GlobalKey::from_seed(rng_seed ^ 0xFACE)).unwrap();
    let sketcher = Sketcher::new(params);
    let subsets = [
        BitSubset::single(0),
        BitSubset::single(1),
        BitSubset::range(0, 2),
    ];
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(rng_seed);
    for (i, &seed) in profile_seeds.iter().enumerate() {
        let profile = Profile::from_bits(&[seed & 1 == 1, seed & 2 == 2]);
        for subset in &subsets {
            let sketch = sketcher
                .sketch(UserId(i as u64), &profile, subset, &mut rng)
                .unwrap();
            db.insert(subset.clone(), UserId(i as u64), sketch);
        }
    }
    (params, db)
}

/// The plan battery: one plan per compiled query family.
fn plan_battery(threshold: u64) -> Vec<TermPlan> {
    let field = IntField::new(0, 2);
    let pair = BitSubset::range(0, 2);
    let clauses = vec![
        ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap(),
        ConjunctiveQuery::new(pair, BitString::from_bits(&[true, false])).unwrap(),
    ];
    vec![
        mean_plan(&field),
        less_than_plan(&field, threshold),
        dnf_plan(&clauses).unwrap(),
        moment_plan(&field, 2),
    ]
}

proptest! {
    /// Conjunctive estimates, distributions and every compiled plan
    /// family answer bit-identically at every lane width.
    #[test]
    fn all_query_families_bit_identical_across_lane_widths(
        p_milli in 50u64..450,
        profile_seeds in proptest::collection::vec(any::<u64>(), 1..150),
        value_seed in any::<u64>(),
        threshold in 0u64..4,
        rng_seed in any::<u64>(),
    ) {
        let p = p_milli as f64 / 1000.0;
        let (params, db) = build_db(p, &profile_seeds, rng_seed);
        let estimator = ConjunctiveEstimator::new(params);
        let engine = QueryEngine::new(params);
        let pair = BitSubset::range(0, 2);
        let query = ConjunctiveQuery::new(
            pair.clone(),
            BitString::from_u64(value_seed & 0b11, 2),
        )
        .unwrap();
        let plans = plan_battery(threshold);

        // Scalar oracle at width 1.
        psketch::core::set_lane_width(1).unwrap();
        let conj = estimator.estimate(&db, &query).unwrap();
        let dist = estimator.estimate_distribution(&db, &pair).unwrap();
        let answers = engine.execute_plans(&db, &plans).unwrap();

        for &width in &SWEEP[1..] {
            psketch::core::set_lane_width(width).unwrap();
            let w_conj = estimator.estimate(&db, &query).unwrap();
            prop_assert_eq!(
                w_conj.fraction.to_bits(), conj.fraction.to_bits(),
                "conjunctive diverged at width {}", width
            );
            prop_assert_eq!(w_conj.raw.to_bits(), conj.raw.to_bits());
            prop_assert_eq!(w_conj.sample_size, conj.sample_size);

            let w_dist = estimator.estimate_distribution(&db, &pair).unwrap();
            prop_assert_eq!(w_dist.len(), dist.len());
            for (w, oracle) in w_dist.iter().zip(&dist) {
                prop_assert_eq!(
                    w.fraction.to_bits(), oracle.fraction.to_bits(),
                    "distribution diverged at width {}", width
                );
                prop_assert_eq!(w.raw.to_bits(), oracle.raw.to_bits());
            }

            let w_answers = engine.execute_plans(&db, &plans).unwrap();
            prop_assert_eq!(w_answers.len(), answers.len());
            for (plan_idx, (w_plan, oracle_plan)) in
                w_answers.iter().zip(&answers).enumerate()
            {
                prop_assert_eq!(w_plan.len(), oracle_plan.len());
                for (w, oracle) in w_plan.iter().zip(oracle_plan) {
                    prop_assert_eq!(
                        w.value.to_bits(), oracle.value.to_bits(),
                        "plan {} diverged at width {}", plan_idx, width
                    );
                    prop_assert_eq!(w.queries_used, oracle.queries_used);
                    prop_assert_eq!(w.min_sample_size, oracle.min_sample_size);
                }
            }
        }
        psketch::core::set_lane_width(0).unwrap();
    }
}
