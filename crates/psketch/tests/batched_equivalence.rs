//! Property tests: the batched columnar estimation pipeline is
//! bit-identical to the scalar reference path over random databases.
//!
//! This is the acceptance bar for the batched refactor — not statistical
//! closeness but exact equality of every `Estimate` field, for random
//! parameters, widths, populations and query values.

use proptest::prelude::*;
use psketch::prf::Prg;
use psketch::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, SketchParams,
    Sketcher, UserId,
};
use rand::SeedableRng;

/// Builds a random database of `m` users with `k`-bit profiles drawn from
/// the given bit seeds.
fn build_db(
    p: f64,
    k: usize,
    profile_seeds: &[u64],
    rng_seed: u64,
) -> (SketchParams, SketchDb, BitSubset) {
    let params =
        SketchParams::with_sip(p, 10, psketch::GlobalKey::from_seed(rng_seed ^ 0xABCD)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(rng_seed);
    for (i, &seed) in profile_seeds.iter().enumerate() {
        let bits: Vec<bool> = (0..k).map(|b| (seed >> (b % 64)) & 1 == 1).collect();
        let profile = Profile::from_bits(&bits);
        let sketch = sketcher
            .sketch(UserId(i as u64), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i as u64), sketch);
    }
    (params, db, subset)
}

proptest! {
    /// `estimate` (batched) equals `estimate_scalar` exactly on random
    /// databases and random query values.
    #[test]
    fn batched_estimate_is_bit_identical_to_scalar(
        p_milli in 50u64..450,
        k in 1usize..10,
        profile_seeds in proptest::collection::vec(any::<u64>(), 1..200),
        value_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let p = p_milli as f64 / 1000.0;
        let (params, db, subset) = build_db(p, k, &profile_seeds, rng_seed);
        let estimator = ConjunctiveEstimator::new(params);
        let value = BitString::from_u64(value_seed & ((1 << k) - 1), k);
        let query = ConjunctiveQuery::new(subset, value).unwrap();

        let batched = estimator.estimate(&db, &query).unwrap();
        let scalar = estimator.estimate_scalar(&db, &query).unwrap();
        prop_assert_eq!(batched.fraction.to_bits(), scalar.fraction.to_bits());
        prop_assert_eq!(batched.raw.to_bits(), scalar.raw.to_bits());
        prop_assert_eq!(batched.sample_size, scalar.sample_size);
        prop_assert_eq!(batched.p.to_bits(), scalar.p.to_bits());
    }

    /// The one-pass distribution scan equals 2^k independent scalar scans
    /// exactly.
    #[test]
    fn one_pass_distribution_is_bit_identical_to_scalar_scans(
        p_milli in 50u64..450,
        k in 1usize..6,
        profile_seeds in proptest::collection::vec(any::<u64>(), 1..120),
        rng_seed in any::<u64>(),
    ) {
        let p = p_milli as f64 / 1000.0;
        let (params, db, subset) = build_db(p, k, &profile_seeds, rng_seed);
        let estimator = ConjunctiveEstimator::new(params);
        let dist = estimator.estimate_distribution(&db, &subset).unwrap();
        prop_assert_eq!(dist.len(), 1 << k);
        for (value, batched) in dist.iter().enumerate() {
            let query = ConjunctiveQuery::new(
                subset.clone(),
                BitString::from_u64(value as u64, k),
            )
            .unwrap();
            let scalar = estimator.estimate_scalar(&db, &query).unwrap();
            prop_assert_eq!(batched.fraction.to_bits(), scalar.fraction.to_bits());
            prop_assert_eq!(batched.raw.to_bits(), scalar.raw.to_bits());
            prop_assert_eq!(batched.sample_size, scalar.sample_size);
        }
    }
}
