//! End-to-end pipeline: generate → publish → query → check against the
//! Lemma 4.1 error band, across crates.

use psketch::core::theory::query_error_bound;
use psketch::{
    BitString, ConjunctiveEstimator, ConjunctiveQuery, GlobalKey, Prg, SketchDb, SketchParams,
    Sketcher,
};
use psketch_data::{BasketModel, PlantedConjunction, SurveyModel};
use rand::SeedableRng;

fn params(p: f64, seed: u64) -> SketchParams {
    SketchParams::with_sip(p, 10, GlobalKey::from_seed(seed)).unwrap()
}

#[test]
fn planted_fraction_recovered_within_lemma41_band() {
    let p = 0.3;
    let m = 30_000;
    let params = params(p, 1);
    let mut rng = Prg::seed_from_u64(2);
    for &k in &[1usize, 4, 10] {
        let gen = PlantedConjunction::all_ones(k.max(2), k, 0.35);
        let pop = gen.generate(m, &mut rng);
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        pop.publish(&sketcher, &gen.subset, &db, &mut rng).unwrap();
        let estimator = ConjunctiveEstimator::new(params);
        let q = ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).unwrap();
        let est = estimator.estimate(&db, &q).unwrap();
        let truth = pop.true_fraction(&gen.subset, &gen.value);
        // δ = 1e-3 band: failures here are 1-in-a-thousand events per run;
        // with fixed seeds this is deterministic and was verified green.
        let band = query_error_bound(m as u64, p, 1e-3);
        assert!(
            (est.fraction - truth).abs() <= band,
            "k={k}: |{} - {truth}| > band {band}",
            est.fraction
        );
    }
}

#[test]
fn survey_pipeline_answers_the_intro_query() {
    let params = params(0.3, 3);
    let mut rng = Prg::seed_from_u64(4);
    let pop = SurveyModel::epidemiology().generate(50_000, &mut rng);
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let health = psketch::BitSubset::new(vec![0, 1]).unwrap();
    pop.publish(&sketcher, &health, &db, &mut rng).unwrap();
    let estimator = ConjunctiveEstimator::new(params);
    let q = ConjunctiveQuery::new(health.clone(), BitString::from_bits(&[true, false])).unwrap();
    let est = estimator.estimate(&db, &q).unwrap();
    let truth = pop.true_fraction(&health, &BitString::from_bits(&[true, false]));
    assert!(
        (est.fraction - truth).abs() < 0.02,
        "hiv+ & !aids: {} vs {truth}",
        est.fraction
    );
}

#[test]
fn basket_support_estimation() {
    // Frequent-itemset mining, the paper's §2 framing: estimate the
    // support of a planted 3-itemset from sketches of that subset.
    let params = params(0.25, 5);
    let mut rng = Prg::seed_from_u64(6);
    let model = BasketModel::new(40, 0.02).with_itemset(vec![3, 7, 11], 0.22);
    let pop = model.generate(30_000, &mut rng);
    let subset = psketch::BitSubset::new(vec![3, 7, 11]).unwrap();
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    pop.publish(&sketcher, &subset, &db, &mut rng).unwrap();
    let estimator = ConjunctiveEstimator::new(params);
    let all_ones = BitString::from_bits(&[true; 3]);
    let q = ConjunctiveQuery::new(subset.clone(), all_ones.clone()).unwrap();
    let est = estimator.estimate(&db, &q).unwrap();
    let truth = pop.true_fraction(&subset, &all_ones);
    assert!(
        (est.fraction - truth).abs() < 0.02,
        "support: {} vs {truth}",
        est.fraction
    );
}

#[test]
fn distribution_over_a_subset_sums_to_one() {
    let params = params(0.3, 7);
    let mut rng = Prg::seed_from_u64(8);
    let gen = PlantedConjunction::all_ones(4, 3, 0.5);
    let pop = gen.generate(20_000, &mut rng);
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    pop.publish(&sketcher, &gen.subset, &db, &mut rng).unwrap();
    let estimator = ConjunctiveEstimator::new(params);
    let dist = estimator.estimate_distribution(&db, &gen.subset).unwrap();
    let total: f64 = dist.iter().map(|e| e.fraction).sum();
    assert!((total - 1.0).abs() < 0.06, "distribution sums to {total}");
    // The planted all-ones cell dominates.
    let max_idx = (0..dist.len())
        .max_by(|&a, &b| dist[a].fraction.total_cmp(&dist[b].fraction))
        .unwrap();
    assert_eq!(max_idx, 7, "all-ones cell should dominate");
}

#[test]
fn both_prf_families_agree_end_to_end() {
    let mut rng = Prg::seed_from_u64(9);
    let gen = PlantedConjunction::all_ones(4, 4, 0.4);
    let pop = gen.generate(20_000, &mut rng);
    let mut estimates = Vec::new();
    for kind in [psketch::PrfKind::Sip, psketch::PrfKind::ChaCha] {
        let params = SketchParams::new(0.3, 10, GlobalKey::from_seed(10), kind).unwrap();
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        pop.publish(&sketcher, &gen.subset, &db, &mut rng).unwrap();
        let estimator = ConjunctiveEstimator::new(params);
        let q = ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).unwrap();
        estimates.push(estimator.estimate(&db, &q).unwrap().fraction);
    }
    assert!(
        (estimates[0] - estimates[1]).abs() < 0.03,
        "PRF families disagree: {estimates:?}"
    );
    assert!((estimates[0] - 0.4).abs() < 0.02);
}
