//! In-band span traces: per-query profiling keyed by the wire nonce.
//!
//! A **trace** is the tree of timed stages one logical query passes
//! through — plan compile, per-term sketch scans, merge, WAL commit —
//! collected on the thread serving it and keyed by the request nonce
//! the wire protocol already propagates end to end. A **span** is one
//! timed stage: a name, a monotonic start offset and duration, and a
//! handful of small numeric attributes (`shard`, `term_count`,
//! `memo_hits`, `lanes`, `attempt`).
//!
//! Cost model, matching the rest of this crate:
//!
//! * **Near-zero when off.** [`enter`] first checks one process-global
//!   relaxed atomic ([`profiling_active`]); with no trace open anywhere
//!   it returns an inert guard without touching thread-local state or
//!   allocating.
//! * **Cheap when on.** Collection is thread-local (no locks on the
//!   recording path); the only lock is taken once per *completed*
//!   trace, to publish it into the bounded [`TraceRing`].
//! * **Never on the float path.** Spans time stages; they do not touch
//!   estimate arithmetic, so answers stay float-bit-identical with
//!   profiling on or off.
//!
//! Completed traces become [`SpanNode`] trees — the owned form that
//! crosses the wire (protocol v6 span attachments), lands in the
//! recent-trace ring, and renders as the `--explain` waterfall.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans recorded per trace beyond this are dropped (the root is marked
/// with a `dropped_spans` attribute) — a runaway instrumentation site
/// must not balloon a profiled response.
pub const MAX_TRACE_SPANS: usize = 1024;

/// Attributes kept per span; later ones are dropped.
pub const MAX_SPAN_ATTRS: usize = 16;

/// How many completed traces the process-global ring retains.
pub const RING_CAPACITY: usize = 64;

/// Open traces across all threads. The fast-path gate: zero means every
/// [`enter`] call is one relaxed load and an early return.
static ACTIVE_TRACES: AtomicU32 = AtomicU32::new(0);

/// Whether any thread currently has a trace open (the cheap gate
/// instrumentation sites consult before touching thread-local state).
#[must_use]
pub fn profiling_active() -> bool {
    // ord: gate: span data lives in thread-locals, never published
    // through this counter — a stale zero just skips one observation
    ACTIVE_TRACES.load(Ordering::Relaxed) != 0
}

/// One span under collection: times are offsets from the trace start.
struct OpenSpan {
    name: &'static str,
    parent: usize,
    start_ns: u64,
    duration_ns: u64,
    attrs: Vec<(&'static str, u64)>,
    closed: bool,
}

/// The per-thread collector behind an open [`Trace`].
struct Collector {
    nonce: u64,
    started: Instant,
    spans: Vec<OpenSpan>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
    dropped: u64,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// An owned span tree — the form that crosses the wire, lives in the
/// [`TraceRing`], and renders as a waterfall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name (`router:scatter`, `shard:plan`, `estimator:scan`…).
    pub name: String,
    /// Monotonic start offset from the owning trace's root, in ns.
    pub start_ns: u64,
    /// Total time spent in this stage (children included), in ns.
    pub duration_ns: u64,
    /// Small numeric attributes (`shard`, `term_count`, `memo_hits`…).
    pub attrs: Vec<(String, u64)>,
    /// Sub-stages, in recording order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf span with no attributes (builder convenience).
    #[must_use]
    pub fn new(name: impl Into<String>, start_ns: u64, duration_ns: u64) -> Self {
        Self {
            name: name.into(),
            start_ns,
            duration_ns,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Time spent in this stage alone: total minus children
    /// (saturating — concurrent children may overlap the parent).
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self
            .children
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.duration_ns));
        self.duration_ns.saturating_sub(children)
    }

    /// Nodes in this subtree, itself included.
    #[must_use]
    pub fn span_count(&self) -> usize {
        // Iterative: decoded trees can be deep and hostile.
        let mut count = 0usize;
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            count += 1;
            stack.extend(node.children.iter());
        }
        count
    }

    /// The first node (preorder) whose name equals `name`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            if node.name == name {
                return Some(node);
            }
            // Preorder: push children reversed so the first child is
            // visited first.
            stack.extend(node.children.iter().rev());
        }
        None
    }

    /// A numeric attribute by key, if present.
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// An open trace on the current thread. Obtain with [`Trace::begin`];
/// close with [`Trace::finish`] to get the span tree. Dropping the
/// guard without finishing discards the collection (a refused or failed
/// request leaves nothing behind).
#[derive(Debug)]
pub struct Trace {
    /// Guards against double-finish after mem::forget-free misuse.
    live: bool,
}

impl Trace {
    /// Opens a trace for `nonce` on this thread, rooted at a span named
    /// `root`. A trace already open on this thread is discarded first
    /// (one thread serves one request at a time everywhere this is
    /// used).
    #[must_use]
    pub fn begin(nonce: u64, root: &'static str) -> Self {
        COLLECTOR.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                // ord: gate: see `profiling_active` — counter only gates
                // the fast path, span data stays thread-local
                ACTIVE_TRACES.fetch_add(1, Ordering::Relaxed);
            }
            *slot = Some(Collector {
                nonce,
                started: Instant::now(),
                spans: vec![OpenSpan {
                    name: root,
                    parent: 0,
                    start_ns: 0,
                    duration_ns: 0,
                    attrs: Vec::new(),
                    closed: false,
                }],
                stack: vec![0],
                dropped: 0,
            });
        });
        Self { live: true }
    }

    /// The nonce of the trace open on this thread, if any.
    #[must_use]
    pub fn current_nonce() -> Option<u64> {
        if !profiling_active() {
            return None;
        }
        COLLECTOR.with(|slot| slot.borrow().as_ref().map(|c| c.nonce))
    }

    /// Attaches an attribute to the root span of this trace.
    pub fn root_attr(&self, key: &'static str, value: u64) {
        COLLECTOR.with(|slot| {
            if let Some(root) = slot.borrow_mut().as_mut().and_then(|c| c.spans.first_mut()) {
                if root.attrs.len() < MAX_SPAN_ATTRS {
                    root.attrs.push((key, value));
                }
            }
        });
    }

    /// Closes the trace and assembles the span tree. Spans still open
    /// (a panic unwound past their guards) are closed at the trace's
    /// end time.
    #[must_use]
    pub fn finish(mut self) -> SpanNode {
        self.live = false;
        take_collector().map_or_else(
            || SpanNode::new("trace:lost", 0, 0),
            |mut collector| {
                let total = elapsed_ns(collector.started);
                for span in &mut collector.spans {
                    if !span.closed {
                        span.duration_ns = total.saturating_sub(span.start_ns);
                        span.closed = true;
                    }
                }
                if collector.dropped > 0 {
                    if let Some(root) = collector.spans.first_mut() {
                        if root.attrs.len() < MAX_SPAN_ATTRS {
                            root.attrs.push(("dropped_spans", collector.dropped));
                        }
                    }
                }
                assemble(collector.spans)
            },
        )
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if self.live {
            drop(take_collector());
        }
    }
}

/// Removes this thread's collector, decrementing the global gate.
fn take_collector() -> Option<Collector> {
    COLLECTOR.with(|slot| {
        let taken = slot.borrow_mut().take();
        if taken.is_some() {
            // ord: gate: see `profiling_active` — decrement only reopens
            // the fast path, no data is released through it
            ACTIVE_TRACES.fetch_sub(1, Ordering::Relaxed);
        }
        taken
    })
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Builds the nested tree from the flat parent-indexed span list.
/// Parents always precede children, so assembling back to front visits
/// every node after all of its children.
fn assemble(spans: Vec<OpenSpan>) -> SpanNode {
    let parents: Vec<usize> = spans.iter().map(|s| s.parent).collect();
    let mut slots: Vec<Option<SpanNode>> = spans
        .into_iter()
        .map(|s| {
            Some(SpanNode {
                name: s.name.to_string(),
                start_ns: s.start_ns,
                duration_ns: s.duration_ns,
                attrs: s.attrs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                children: Vec::new(),
            })
        })
        .collect();
    for i in (1..slots.len()).rev() {
        let Some(mut node) = slots.get_mut(i).and_then(Option::take) else {
            continue;
        };
        // Children were pushed in descending index order; restore
        // recording order.
        node.children.reverse();
        let parent = parents.get(i).copied().unwrap_or(0);
        if let Some(Some(parent_node)) = slots.get_mut(parent) {
            parent_node.children.push(node);
        }
    }
    let mut root = slots
        .first_mut()
        .and_then(Option::take)
        .unwrap_or_else(|| SpanNode::new("trace:lost", 0, 0));
    root.children.reverse();
    root
}

/// A span guard: opens a timed stage under the current thread's trace
/// (inert — no allocation, no thread-local access beyond one atomic
/// load — when no trace is open). Closes the stage when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    /// Index of the span in the collector, `None` when inert.
    index: Option<usize>,
}

impl SpanGuard {
    /// Attaches a numeric attribute (no-op on an inert guard, or past
    /// [`MAX_SPAN_ATTRS`]).
    pub fn attr(&self, key: &'static str, value: u64) {
        let Some(index) = self.index else { return };
        COLLECTOR.with(|slot| {
            if let Some(span) = slot
                .borrow_mut()
                .as_mut()
                .and_then(|c| c.spans.get_mut(index))
            {
                if span.attrs.len() < MAX_SPAN_ATTRS {
                    span.attrs.push((key, value));
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else { return };
        COLLECTOR.with(|slot| {
            if let Some(collector) = slot.borrow_mut().as_mut() {
                let now = elapsed_ns(collector.started);
                if let Some(span) = collector.spans.get_mut(index) {
                    if !span.closed {
                        span.duration_ns = now.saturating_sub(span.start_ns);
                        span.closed = true;
                    }
                }
                // Pop this span (and anything a panic left open above
                // it) off the open stack.
                while let Some(&top) = collector.stack.last() {
                    if top < index {
                        break;
                    }
                    collector.stack.pop();
                }
            }
        });
    }
}

/// Opens a span named `name` under the current thread's trace. Returns
/// an inert guard when profiling is off — the off-path is one relaxed
/// atomic load.
#[must_use]
pub fn enter(name: &'static str) -> SpanGuard {
    if !profiling_active() {
        return SpanGuard { index: None };
    }
    let index = COLLECTOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        let collector = slot.as_mut()?;
        if collector.spans.len() >= MAX_TRACE_SPANS {
            collector.dropped += 1;
            return None;
        }
        let parent = collector.stack.last().copied().unwrap_or(0);
        let index = collector.spans.len();
        collector.spans.push(OpenSpan {
            name,
            parent,
            start_ns: elapsed_ns(collector.started),
            duration_ns: 0,
            attrs: Vec::new(),
            closed: false,
        });
        collector.stack.push(index);
        Some(index)
    });
    SpanGuard { index }
}

/// A completed trace in the ring.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// The wire nonce the trace is keyed by.
    pub nonce: u64,
    /// The span tree.
    pub root: SpanNode,
}

/// A bounded FIFO of recently completed traces, keyed by nonce. One
/// short mutex per store/fetch — traces complete at query rate, not at
/// span rate, so this is never on the hot path.
#[derive(Debug, Default)]
pub struct TraceRing {
    inner: Mutex<VecDeque<CompletedTrace>>,
}

impl TraceRing {
    /// An empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a completed trace, evicting the oldest past
    /// [`RING_CAPACITY`]. A poisoned mutex is recovered — the ring
    /// holds plain data, never a half-applied invariant.
    pub fn store(&self, nonce: u64, root: SpanNode) {
        let mut ring = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(CompletedTrace { nonce, root });
    }

    /// The most recently completed trace for `nonce`, if still retained.
    #[must_use]
    pub fn fetch(&self, nonce: u64) -> Option<SpanNode> {
        let ring = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter()
            .rev()
            .find(|t| t.nonce == nonce)
            .map(|t| t.root.clone())
    }

    /// Summaries of every retained trace, oldest first.
    #[must_use]
    pub fn list(&self) -> Vec<TraceSummary> {
        let ring = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter()
            .map(|t| TraceSummary {
                nonce: t.nonce,
                root: t.root.name.clone(),
                duration_ns: t.root.duration_ns,
                spans: t.root.span_count(),
            })
            .collect()
    }
}

/// One row of [`TraceRing::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace's wire nonce.
    pub nonce: u64,
    /// Root span name.
    pub root: String,
    /// Root span duration in ns.
    pub duration_ns: u64,
    /// Spans in the tree.
    pub spans: usize,
}

/// The process-global recent-trace ring (what the wire `Trace` frame
/// and the `/traces` endpoint serve).
#[must_use]
pub fn ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(TraceRing::new)
}

/// Renders the ring as the `/traces` JSON document.
#[must_use]
pub fn ring_json() -> String {
    let rows: Vec<String> = ring()
        .list()
        .into_iter()
        .map(|t| {
            format!(
                "{{\"nonce\":\"{}\",\"root\":\"{}\",\"duration_ns\":{},\"spans\":{}}}",
                crate::trace_hex(t.nonce),
                t.root.replace('\\', "\\\\").replace('"', "\\\""),
                t.duration_ns,
                t.spans
            )
        })
        .collect();
    format!("{{\"traces\":[{}]}}\n", rows.join(","))
}

/// Formats a nanosecond duration for the waterfall: fixed rules, so the
/// same span renders byte-identically wherever it is printed (the CI
/// smoke test diffs `--explain` output against `cluster trace` output).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Whether a span is a router-side per-shard wrapper (`shard:<id>`),
/// eligible for the slowest-shard marker.
fn is_shard_wrapper(name: &str) -> bool {
    name.strip_prefix("shard:")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// Renders an indented waterfall tree: one line per span with total and
/// self time plus attributes, the slowest `shard:<id>` sibling marked.
/// Shard-local subtree lines are rendered from the same durations the
/// shard stored in its ring, so `--explain` output and a later
/// `cluster trace` fetch print them identically.
#[must_use]
pub fn render_waterfall(root: &SpanNode) -> String {
    let mut out = String::new();
    render_node(&mut out, root, 0, false);
    out
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize, slowest: bool) {
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{}  total {}  self {}",
        node.name,
        fmt_ns(node.duration_ns),
        fmt_ns(node.self_ns())
    );
    for (key, value) in &node.attrs {
        let _ = write!(out, "  {key}={value}");
    }
    if slowest {
        let _ = write!(out, "  <== slowest shard");
    }
    let _ = writeln!(out);
    // Mark the slowest shard wrapper among these children (only
    // meaningful with at least two shards to compare).
    let shard_children = node
        .children
        .iter()
        .filter(|c| is_shard_wrapper(&c.name))
        .count();
    let slowest_shard = (shard_children >= 2)
        .then(|| {
            node.children
                .iter()
                .enumerate()
                .filter(|(_, c)| is_shard_wrapper(&c.name))
                .max_by_key(|(_, c)| c.duration_ns)
                .map(|(i, _)| i)
        })
        .flatten();
    for (i, child) in node.children.iter().enumerate() {
        render_node(out, child, depth + 1, slowest_shard == Some(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_when_no_trace_open() {
        assert!(!profiling_active());
        let guard = enter("should:be:inert");
        assert!(guard.index.is_none());
        guard.attr("ignored", 1);
        assert!(Trace::current_nonce().is_none());
    }

    #[test]
    fn trace_collects_nested_spans() {
        let trace = Trace::begin(0xBEEF, "root");
        assert!(profiling_active());
        assert_eq!(Trace::current_nonce(), Some(0xBEEF));
        trace.root_attr("terms", 3);
        {
            let outer = enter("outer");
            outer.attr("shard", 1);
            {
                let _inner = enter("inner");
            }
        }
        {
            let _second = enter("second");
        }
        let tree = trace.finish();
        assert!(!profiling_active());
        assert_eq!(tree.name, "root");
        assert_eq!(tree.attr("terms"), Some(3));
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "outer");
        assert_eq!(tree.children[0].attr("shard"), Some(1));
        assert_eq!(tree.children[0].children.len(), 1);
        assert_eq!(tree.children[0].children[0].name, "inner");
        assert_eq!(tree.children[1].name, "second");
        assert!(tree.children[1].children.is_empty());
        assert_eq!(tree.span_count(), 4);
        assert!(tree.find("inner").is_some());
        assert!(tree.find("absent").is_none());
        // Durations nest: the root covers its children.
        assert!(tree.duration_ns >= tree.children[0].duration_ns);
        assert!(tree.children[0].duration_ns >= tree.children[0].children[0].duration_ns);
    }

    #[test]
    fn dropping_an_unfinished_trace_discards_it() {
        {
            let _trace = Trace::begin(7, "root");
            let _span = enter("work");
        }
        assert!(!profiling_active());
        assert!(Trace::current_nonce().is_none());
    }

    #[test]
    fn span_cap_drops_and_marks() {
        let trace = Trace::begin(1, "root");
        for _ in 0..(MAX_TRACE_SPANS + 10) {
            let _span = enter("leaf");
        }
        let tree = trace.finish();
        // Root plus capped leaves; the overflow is accounted for.
        assert_eq!(tree.span_count(), MAX_TRACE_SPANS);
        assert_eq!(tree.attr("dropped_spans"), Some(11));
    }

    #[test]
    fn ring_stores_fetches_and_evicts() {
        let ring = TraceRing::new();
        for nonce in 1..=(RING_CAPACITY as u64 + 5) {
            ring.store(nonce, SpanNode::new("root", 0, nonce));
        }
        // The oldest five aged out.
        assert!(ring.fetch(1).is_none());
        assert!(ring.fetch(5).is_none());
        let kept = ring.fetch(6).expect("still retained");
        assert_eq!(kept.duration_ns, 6);
        let list = ring.list();
        assert_eq!(list.len(), RING_CAPACITY);
        assert_eq!(list[0].nonce, 6);
        assert_eq!(list.last().unwrap().nonce, RING_CAPACITY as u64 + 5);
        // Same nonce stored twice: the most recent wins.
        ring.store(100, SpanNode::new("first", 0, 1));
        ring.store(100, SpanNode::new("second", 0, 2));
        assert_eq!(ring.fetch(100).unwrap().name, "second");
    }

    #[test]
    fn self_time_subtracts_children() {
        let mut root = SpanNode::new("root", 0, 100);
        root.children.push(SpanNode::new("a", 10, 30));
        root.children.push(SpanNode::new("b", 50, 40));
        assert_eq!(root.self_ns(), 30);
        // Children exceeding the parent saturate to zero.
        let mut tight = SpanNode::new("tight", 0, 10);
        tight.children.push(SpanNode::new("c", 0, 40));
        assert_eq!(tight.self_ns(), 0);
    }

    #[test]
    fn waterfall_marks_slowest_shard_wrapper() {
        let mut scatter = SpanNode::new("router:scatter", 0, 100);
        let mut s0 = SpanNode::new("shard:0", 0, 30);
        s0.attrs.push(("attempt".into(), 1));
        let s1 = SpanNode::new("shard:1", 0, 60);
        let inner = SpanNode::new("shard:partial_counts", 0, 25);
        scatter.children.push(s0);
        scatter.children.push(s1);
        scatter.children[0].children.push(inner);
        let text = render_waterfall(&scatter);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("router:scatter  total "));
        assert!(lines[1].contains("shard:0") && lines[1].contains("attempt=1"));
        assert!(lines[2].contains("shard:partial_counts"));
        assert!(
            lines[3].contains("shard:1") && lines[3].contains("<== slowest shard"),
            "{text}"
        );
        assert!(!lines[1].contains("slowest"), "{text}");
        // The shard-local subtree line never carries the marker.
        assert!(!lines[2].contains("slowest"), "{text}");
    }

    #[test]
    fn fmt_ns_is_stable() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_345_678), "2.346ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }

    #[test]
    fn ring_json_lists_nonces() {
        ring().store(0xABCD, SpanNode::new("root", 0, 5));
        let json = ring_json();
        assert!(json.contains(&crate::trace_hex(0xABCD)), "{json}");
        assert!(json.contains("\"spans\":1"), "{json}");
    }
}
