//! Log₂-bucketed histograms: HDR-style `AtomicU64` bucket arrays.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i - 1]` — so `record` is a `leading_zeros` and one
//! relaxed `fetch_add`, and a recorded value is recoverable to within a
//! factor of two (one log₂ bucket). That bound is what the quantile
//! accessors promise: `p99` returns the upper bound of the bucket the
//! exact 99th-percentile value landed in.
//!
//! Merging is bucket-wise addition (plus `max` of the tracked maxima),
//! which is associative and commutative — per-thread and per-shard
//! histograms merge into exactly the histogram a single observer
//! recording every value would hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one for zero plus one per power of two up to
/// `2^63`.
pub const BUCKETS: usize = 65;

/// Index of the bucket a value lands in.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A lock-free log₂-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (no-op while metrics are disabled).
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        // ord: independent monotonic counters; scrapes tolerate torn
        // cross-field reads, so no ordering between them is needed
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        // ord: same stats surface — monotonic, no cross-field ordering
        self.sum.fetch_add(value, Ordering::Relaxed);
        // ord: same stats surface — monotonic, no cross-field ordering
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the buckets (relaxed loads: counts from
    /// concurrent writers may or may not be included, exactly like the
    /// rest of the stats surface).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                // ord: snapshot is explicitly fuzzy (see doc comment)
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            // ord: snapshot is explicitly fuzzy (see doc comment)
            sum: self.sum.load(Ordering::Relaxed),
            // ord: snapshot is explicitly fuzzy (see doc comment)
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state — what crosses
/// threads, the wire, and the Prometheus endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another snapshot into this one (bucket-wise addition, max
    /// of maxima) — associative and commutative, so any merge tree over
    /// per-thread or per-shard snapshots yields the same result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The upper bound of the bucket holding the `q`-quantile
    /// observation (`0 < q <= 1`), or `0` for an empty histogram. The
    /// exact value is within one log₂ bucket below the returned bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact and caps the last occupied bucket's
                // nominal bound.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// p50/p90/p99/max rollup.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// The standard rollup of a histogram snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Upper bound of the median's bucket.
    pub p50: u64,
    /// Upper bound of the 90th percentile's bucket.
    pub p90: u64,
    /// Upper bound of the 99th percentile's bucket.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn record_and_summary() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum, 1106);
        assert_eq!(snap.max, 1000);
        let s = snap.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 1000);
        // p50: rank ceil(0.5*6)=3 → value 2's bucket [2,3] → bound 3.
        assert_eq!(s.p50, 3);
        // p99: rank 6 → 1000's bucket [512,1023] → capped by max 1000.
        assert_eq!(s.p99, 1000);
    }

    #[test]
    fn merge_matches_single_recorder() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * v);
            } else {
                b.record(v * v);
            }
            all.record(v * v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn empty_quantiles_are_zero() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.summary(), HistogramSummary::default());
    }
}
