//! Prometheus text exposition: a renderer for [`RegistrySnapshot`]s and
//! a tiny hand-rolled HTTP/1.0 `GET /metrics` listener over
//! `std::net::TcpListener` — no HTTP library, because the format needs
//! exactly one response shape.
//!
//! Histograms render in the classic cumulative-`le` form with bucket
//! bounds equal to the log₂ bucket upper bounds (durations are recorded
//! in nanoseconds, so `le` values are nanoseconds too), plus `_sum` and
//! `_count` series and a `_max` gauge (the exact tracked maximum, which
//! Prometheus histograms normally lose).

use crate::hist::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::{MetricId, RegistrySnapshot};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Escapes a label value for the exposition format.
#[must_use]
pub fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn type_line(out: &mut String, seen: &mut Vec<String>, family: &str, kind: &str) {
    if seen.iter().any(|f| f == family) {
        return;
    }
    seen.push(family.to_string());
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

fn histogram_block(out: &mut String, id: &MetricId, snap: &HistogramSnapshot) {
    let labels = &id.labels;
    let with_le = |le: &str| -> String {
        let mut pairs: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        pairs.push(format!("le=\"{le}\""));
        format!("{{{}}}", pairs.join(","))
    };
    let top = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate().take(top) {
        cumulative += count;
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            id.family,
            with_le(&bucket_upper_bound(i).to_string())
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        id.family,
        with_le("+Inf"),
        snap.count()
    );
    let _ = writeln!(out, "{}_sum{} {}", id.family, id.label_block(), snap.sum);
    let _ = writeln!(
        out,
        "{}_count{} {}",
        id.family,
        id.label_block(),
        snap.count()
    );
    let _ = writeln!(out, "{}_max{} {}", id.family, id.label_block(), snap.max);
}

/// Renders a snapshot in the Prometheus text format (version 0.0.4).
#[must_use]
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut seen = Vec::new();
    for (id, value) in &snap.counters {
        type_line(&mut out, &mut seen, &id.family, "counter");
        let _ = writeln!(out, "{} {value}", id.render());
    }
    for (id, value) in &snap.gauges {
        type_line(&mut out, &mut seen, &id.family, "gauge");
        let _ = writeln!(out, "{} {value}", id.render());
    }
    for (id, hist) in &snap.histograms {
        type_line(&mut out, &mut seen, &id.family, "histogram");
        histogram_block(&mut out, id, hist);
    }
    out
}

/// How often the accept loop polls the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// The scrape listener: serves `GET /metrics` from the global registry
/// on a background thread until shut down (or dropped).
#[derive(Debug)]
pub struct MetricsExposer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExposer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`, port 0 for ephemeral) and
    /// starts serving scrapes.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn start(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("psketch-metrics".into())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ord: shutdown flag read by the accept thread; SeqCst keeps the
        // rare path trivially correct (one store per process lifetime)
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExposer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    // ord: pairs with the SeqCst store in `stop_and_join`
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are tiny; serve inline on the accept thread.
                let _ = serve_scrape(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Total time a scraper gets to deliver its request head. The per-read
/// timeout alone lets a client that trickles one byte every 1.9 s pin
/// the accept thread for minutes; the overall deadline bounds the whole
/// exchange.
const REQUEST_DEADLINE: Duration = Duration::from_secs(5);

fn serve_scrape(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let started = std::time::Instant::now();
    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the header terminator, an 8 KiB cap, or the overall
    // deadline — a scrape's request head fits well inside all three.
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < 8192 {
        if started.elapsed() >= REQUEST_DEADLINE {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => request.extend_from_slice(buf.get(..n).unwrap_or(&buf)),
            Err(_) => break,
        }
    }
    let line = request
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or_default();
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("only GET is supported\n"),
        )
    } else if path == "/metrics" || path == "/" {
        (
            "200 OK",
            "text/plain; version=0.0.4",
            render_prometheus(&crate::snapshot()),
        )
    } else if path == "/traces" {
        ("200 OK", "application/json", crate::span::ring_json())
    } else {
        (
            "404 Not Found",
            "text/plain",
            String::from("try GET /metrics or GET /traces\n"),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_metric_kinds() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("t_requests_total", &[("kind", "conj")]).add(3);
        reg.gauge("t_uptime_secs", &[]).set(9);
        let h = reg.histogram("t_latency_nanos", &[]);
        h.record(1);
        h.record(300);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE t_requests_total counter"));
        assert!(text.contains("t_requests_total{kind=\"conj\"} 3"));
        assert!(text.contains("# TYPE t_uptime_secs gauge"));
        assert!(text.contains("t_uptime_secs 9"));
        assert!(text.contains("# TYPE t_latency_nanos histogram"));
        assert!(text.contains("t_latency_nanos_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_latency_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("t_latency_nanos_sum 301"));
        assert!(text.contains("t_latency_nanos_count 2"));
        assert!(text.contains("t_latency_nanos_max 300"));
    }

    #[test]
    fn scrape_over_loopback() {
        crate::counter("t_scrape_smoke_total", &[]).inc();
        let exposer = MetricsExposer::start("127.0.0.1:0").expect("bind");
        let addr = exposer.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("t_scrape_smoke_total"), "{response}");

        // Unknown paths 404.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");

        // Non-GET methods 405.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");

        // The trace ring serves as JSON.
        crate::span::ring().store(0x51AB, crate::span::SpanNode::new("smoke", 0, 7));
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /traces HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("application/json"), "{response}");
        assert!(response.contains(&crate::trace_hex(0x51AB)), "{response}");
        exposer.shutdown();
    }
}
