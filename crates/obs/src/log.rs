//! Leveled structured logging with trace correlation.
//!
//! Records are key=value lines (logfmt-style) or JSON objects, written
//! to stderr, filtered by the `PSKETCH_LOG` environment variable:
//!
//! ```text
//! PSKETCH_LOG=warn                    # global level
//! PSKETCH_LOG=info,psketch::router=debug   # per-target overrides
//! PSKETCH_LOG_FORMAT=json             # JSON-lines instead of logfmt
//! ```
//!
//! Levels are `off < error < warn < info < debug`; the default is
//! `info`. Target overrides match by prefix, longest prefix wins, so
//! `psketch::router=debug` covers everything the router logs.
//!
//! Every record may carry a `trace` field — the query nonce the wire
//! protocol already propagates — rendered via [`crate::trace_hex`] so
//! one analyst query greps identically across router and shard logs.
//! Tests capture records in-process with [`Capture`].

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered so `Error < Debug` (more severe = smaller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the operator must see.
    Error,
    /// Degradation worth flagging (slow queries, shard outages).
    Warn,
    /// Life-cycle events (startup, recovery, compaction).
    Info,
    /// Per-request detail (trace-correlated timings).
    Debug,
}

impl Level {
    /// The record's level tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Error => "ERROR",
            Self::Warn => "WARN",
            Self::Info => "INFO",
            Self::Debug => "DEBUG",
        }
    }

    fn parse(s: &str) -> Option<Option<Self>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Self::Error)),
            "warn" | "warning" => Some(Some(Self::Warn)),
            "info" => Some(Some(Self::Info)),
            "debug" | "trace" => Some(Some(Self::Debug)),
            _ => None,
        }
    }
}

/// The parsed `PSKETCH_LOG` filter.
#[derive(Debug, Clone)]
struct Filter {
    /// `None` = everything off.
    default: Option<Level>,
    /// `(target prefix, level)` overrides.
    rules: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn from_spec(spec: &str) -> Self {
        let mut filter = Self {
            default: Some(Level::Info),
            rules: Vec::new(),
        };
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some((target, level)) = token.split_once('=') {
                if let Some(level) = Level::parse(level) {
                    filter.rules.push((target.trim().to_string(), level));
                }
            } else if let Some(level) = Level::parse(token) {
                filter.default = level;
            }
        }
        // Longest prefix first so the most specific rule wins.
        filter
            .rules
            .sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
        filter
    }

    fn from_env() -> Self {
        Self::from_spec(&std::env::var("PSKETCH_LOG").unwrap_or_default())
    }

    fn allows(&self, level: Level, target: &str) -> bool {
        let cap = self
            .rules
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map_or(self.default, |&(_, level)| level);
        cap.is_some_and(|cap| level <= cap)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Logfmt,
    Json,
}

fn config() -> &'static (Filter, Format) {
    static CONFIG: OnceLock<(Filter, Format)> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let format = match std::env::var("PSKETCH_LOG_FORMAT").as_deref() {
            Ok("json") => Format::Json,
            _ => Format::Logfmt,
        };
        (Filter::from_env(), format)
    })
}

/// Whether a record at this level/target would be written.
#[must_use]
pub fn enabled(level: Level, target: &str) -> bool {
    config().0.allows(level, target)
}

type CaptureBuffer = Arc<Mutex<Vec<String>>>;

fn capture_slot() -> &'static Mutex<Option<CaptureBuffer>> {
    static CAPTURE: Mutex<Option<CaptureBuffer>> = Mutex::new(None);
    &CAPTURE
}

/// An in-process log capture for tests: while alive, every record that
/// passes the filter is appended to this buffer instead of stderr.
#[derive(Debug)]
pub struct Capture {
    buffer: CaptureBuffer,
}

impl Capture {
    /// Installs a fresh capture buffer (replacing any previous one).
    ///
    /// # Panics
    ///
    /// Panics if the capture mutex is poisoned.
    #[must_use]
    pub fn install() -> Self {
        let buffer: CaptureBuffer = Arc::default();
        *capture_slot().lock().expect("capture slot poisoned") = Some(Arc::clone(&buffer));
        Self { buffer }
    }

    /// The records captured so far.
    ///
    /// # Panics
    ///
    /// Panics if the buffer mutex is poisoned.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.buffer.lock().expect("capture buffer poisoned").clone()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        let mut slot = capture_slot().lock().expect("capture slot poisoned");
        // Only uninstall our own buffer; a later Capture may have
        // replaced it.
        if slot
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, &self.buffer))
        {
            *slot = None;
        }
    }
}

/// A structured record under construction. Build with [`event`] (or the
/// level shorthands), attach fields, then [`Event::emit`].
#[derive(Debug)]
pub struct Event {
    level: Level,
    target: &'static str,
    trace: Option<u64>,
    fields: Vec<(&'static str, String)>,
}

/// Starts a record at `level` for `target`.
#[must_use]
pub fn event(level: Level, target: &'static str) -> Event {
    Event {
        level,
        target,
        trace: None,
        fields: Vec::new(),
    }
}

/// Starts an `ERROR` record.
#[must_use]
pub fn error(target: &'static str) -> Event {
    event(Level::Error, target)
}

/// Starts a `WARN` record.
#[must_use]
pub fn warn(target: &'static str) -> Event {
    event(Level::Warn, target)
}

/// Starts an `INFO` record.
#[must_use]
pub fn info(target: &'static str) -> Event {
    event(Level::Info, target)
}

/// Starts a `DEBUG` record.
#[must_use]
pub fn debug(target: &'static str) -> Event {
    event(Level::Debug, target)
}

impl Event {
    /// Attaches the trace correlation id (the query nonce).
    #[must_use]
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }

    /// Attaches a key=value field.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Display) -> Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// Renders and writes the record if the filter allows it.
    ///
    /// # Panics
    ///
    /// Panics if the capture mutexes are poisoned.
    pub fn emit(self, message: impl Display) {
        let (filter, format) = config();
        if !filter.allows(self.level, self.target) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let line = match format {
            Format::Logfmt => self.render_logfmt(ts_ms, &message.to_string()),
            Format::Json => self.render_json(ts_ms, &message.to_string()),
        };
        let captured = capture_slot()
            .lock()
            .expect("capture slot poisoned")
            .clone();
        if let Some(buffer) = captured {
            buffer.lock().expect("capture buffer poisoned").push(line);
        } else {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
    }

    fn render_logfmt(&self, ts_ms: u64, message: &str) -> String {
        let mut line = format!(
            "ts={ts_ms} level={} target={} msg={}",
            self.level.as_str(),
            self.target,
            quote_logfmt(message)
        );
        if let Some(trace) = self.trace {
            let _ = write!(line, " trace={}", crate::trace_hex(trace));
        }
        for (key, value) in &self.fields {
            let _ = write!(line, " {key}={}", quote_logfmt(value));
        }
        line
    }

    fn render_json(&self, ts_ms: u64, message: &str) -> String {
        let mut line = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            self.level.as_str().to_ascii_lowercase(),
            escape_json(self.target),
            escape_json(message)
        );
        if let Some(trace) = self.trace {
            let _ = write!(line, ",\"trace\":\"{}\"", crate::trace_hex(trace));
        }
        for (key, value) in &self.fields {
            let _ = write!(line, ",\"{}\":\"{}\"", escape_json(key), escape_json(value));
        }
        line.push('}');
        line
    }
}

/// Quotes a logfmt value when it contains spaces, quotes or equals.
fn quote_logfmt(value: &str) -> String {
    if !value.is_empty()
        && value
            .chars()
            .all(|c| !c.is_whitespace() && c != '"' && c != '=')
    {
        return value.to_string();
    }
    format!("\"{}\"", value.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_levels_and_prefixes() {
        let f = Filter::from_spec("warn,psketch::router=debug,psketch::router::inner=off");
        assert!(f.allows(Level::Warn, "psketch::server"));
        assert!(!f.allows(Level::Info, "psketch::server"));
        assert!(f.allows(Level::Debug, "psketch::router"));
        assert!(!f.allows(Level::Error, "psketch::router::inner"));
        // Empty spec → info default.
        let d = Filter::from_spec("");
        assert!(d.allows(Level::Info, "anything"));
        assert!(!d.allows(Level::Debug, "anything"));
    }

    #[test]
    fn logfmt_rendering_quotes_and_traces() {
        let e = event(Level::Warn, "psketch::test")
            .trace(0xABCD)
            .field("shard", 2)
            .field("note", "two words");
        let line = e.render_logfmt(17, "slow query");
        assert_eq!(
            line,
            "ts=17 level=WARN target=psketch::test msg=\"slow query\" \
             trace=0x000000000000abcd shard=2 note=\"two words\""
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let e = event(Level::Error, "t").field("k", "a\"b");
        let line = e.render_json(5, "m\nn");
        assert_eq!(
            line,
            "{\"ts_ms\":5,\"level\":\"error\",\"target\":\"t\",\"msg\":\"m\\nn\",\"k\":\"a\\\"b\"}"
        );
    }

    #[test]
    fn capture_collects_and_uninstalls() {
        let cap = Capture::install();
        warn("psketch::capture_test").trace(42).emit("hello");
        let lines = cap.lines();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("hello") && l.contains(&crate::trace_hex(42))),
            "captured: {lines:?}"
        );
        drop(cap);
        // After drop, emitting must not panic (goes to stderr).
        warn("psketch::capture_test").emit("after drop");
    }
}
