//! # psketch-obs — the observability substrate
//!
//! Std-only (no dependencies, not even the vendored shims) so every
//! crate in the workspace can afford it: a process-wide
//! [`MetricsRegistry`] of named lock-free [`Counter`]s, [`Gauge`]s and
//! log₂-bucketed [`Histogram`]s, a leveled structured [`log`]ger whose
//! records carry a `trace_id`, per-query [`span`] traces with a bounded
//! recent-trace ring, and a Prometheus-text [`expose`] module (renderer
//! + a tiny HTTP/1.0 `GET /metrics` + `GET /traces` listener).
//!
//! Design rules, in force everywhere this crate is used:
//!
//! * **Never on the float path.** Instrumentation wraps timing and
//!   counting *around* estimator scans and merges; it must not change a
//!   single arithmetic operation, so answers stay float-bit-identical
//!   with metrics on or off.
//! * **Runtime off-switch.** [`set_enabled`]`(false)` turns every
//!   `record`/`inc`/`set` into an early-return (one relaxed atomic
//!   load); the e26 experiment measures the residual cost of the *on*
//!   path against this off path.
//! * **Mergeable.** A [`RegistrySnapshot`] from each shard merges into
//!   a cluster-wide view exactly like the router merges partial counts:
//!   counters add, histograms add bucket-wise, gauges keep the max.
//!
//! Metric names follow the Prometheus convention
//! (`psketch_<area>_<what>_<unit>`), labels are attached at
//! registration ([`MetricsRegistry::counter`] etc.), and durations are
//! recorded in **nanoseconds** (`*_nanos` histograms). The catalog of
//! every name the workspace emits lives in `docs/observability.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod hist;
pub mod log;
pub mod registry;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot, HistogramSummary, BUCKETS};
pub use registry::{Counter, Gauge, MetricId, MetricsRegistry, RegistrySnapshot};
pub use span::{render_waterfall, SpanGuard, SpanNode, Trace, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Whether instrumentation records anything (`true` at startup).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all metric recording on or off process-wide. Off means every
/// `inc`/`add`/`set`/`record` returns after one relaxed load — the
/// `--no-metrics` path. Log records are governed by the log filter,
/// not this switch (an error is worth writing even when unmetered).
pub fn set_enabled(on: bool) {
    // ord: gate: pure on/off toggle — no data is published under this
    // flag, so a stale read only delays the switch by one observation
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    // ord: gate: see `set_enabled` — nothing is ordered behind the flag
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry every instrumented crate records into.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Registers (or fetches) a counter in the global registry.
#[must_use]
pub fn counter(family: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(family, labels)
}

/// Registers (or fetches) a gauge in the global registry.
#[must_use]
pub fn gauge(family: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(family, labels)
}

/// Registers (or fetches) a histogram in the global registry.
#[must_use]
pub fn histogram(family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(family, labels)
}

/// Snapshots every metric in the global registry.
#[must_use]
pub fn snapshot() -> RegistrySnapshot {
    global().snapshot()
}

/// Renders a `u64` trace id the way every log record does: `0x`-prefixed
/// zero-padded hex, so one analyst query is greppable across the logs of
/// every node it touched.
#[must_use]
pub fn trace_hex(trace_id: u64) -> String {
    format!("{trace_id:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_toggle_gates_recording() {
        let c = counter("psketch_obs_test_toggle_total", &[]);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 1, "disabled counter must not move");
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn trace_hex_is_fixed_width() {
        assert_eq!(trace_hex(0x1f), "0x000000000000001f");
        assert_eq!(trace_hex(u64::MAX), "0xffffffffffffffff");
    }
}
