//! The process-wide metrics registry: named counters, gauges and
//! histograms, registered once and recorded lock-free thereafter.
//!
//! Registration takes a short mutex (hot call sites cache the returned
//! `Arc`); recording is a relaxed atomic op. Snapshots are mergeable
//! across threads, processes and shards — the cluster merges per-shard
//! snapshots exactly like it merges partial term counts.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one (no-op while metrics are disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while metrics are disabled).
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            // ord: monotonic counter; scrapes only need eventual totals
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // ord: lone word, nothing ordered against it
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depths, config knobs).
/// Cross-shard merges keep the **maximum** — summing gauges is the
/// classic status-merge bug (a 3-shard cluster is not "up 3× as long").
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value (no-op while metrics are disabled).
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            // ord: last-write-wins instantaneous value, no ordering need
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // ord: lone word, nothing ordered against it
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric's identity: family name plus label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// The metric family (`psketch_server_request_nanos`).
    pub family: String,
    /// Label pairs, sorted by key at registration.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id with sorted labels.
    #[must_use]
    pub fn new(family: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            family: family.to_string(),
            labels,
        }
    }

    /// Renders the Prometheus-style label block (`{k="v",…}`), empty
    /// for an unlabeled metric.
    #[must_use]
    pub fn label_block(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::expose::escape_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }

    /// The full rendered name (`family{k="v"}`) — the registry key.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}{}", self.family, self.label_block())
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricId, Arc<Counter>>,
    gauges: BTreeMap<MetricId, Arc<Gauge>>,
    histograms: BTreeMap<MetricId, Arc<Histogram>>,
}

/// The registry: a name-keyed catalog of live metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or fetches) the counter with this identity.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned (a metrics caller
    /// panicked mid-registration).
    #[must_use]
    pub fn counter(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.counters.entry(id).or_default())
    }

    /// Registers (or fetches) the gauge with this identity.
    ///
    /// # Panics
    ///
    /// As [`MetricsRegistry::counter`].
    #[must_use]
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.gauges.entry(id).or_default())
    }

    /// Registers (or fetches) the histogram with this identity.
    ///
    /// # Panics
    ///
    /// As [`MetricsRegistry::counter`].
    #[must_use]
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.histograms.entry(id).or_default())
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// identity.
    ///
    /// # Panics
    ///
    /// As [`MetricsRegistry::counter`].
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// An owned snapshot of a whole registry — what the `Metrics` wire
/// frame carries and `cluster status --metrics` merges shard by shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// `(identity, value)` per counter, ascending by identity.
    pub counters: Vec<(MetricId, u64)>,
    /// `(identity, value)` per gauge, ascending by identity.
    pub gauges: Vec<(MetricId, u64)>,
    /// `(identity, snapshot)` per histogram, ascending by identity.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Merges another node's snapshot into this one: counters sum,
    /// gauges keep the max, histograms add bucket-wise. Metrics only
    /// one side knows are carried over unchanged, so any merge order
    /// over the same set of snapshots produces the same result.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        merge_by_id(&mut self.counters, &other.counters, |mine, theirs| {
            *mine += theirs;
        });
        merge_by_id(&mut self.gauges, &other.gauges, |mine, theirs| {
            *mine = (*mine).max(*theirs);
        });
        merge_by_id(&mut self.histograms, &other.histograms, |mine, theirs| {
            mine.merge(theirs);
        });
    }

    /// Whether the snapshot holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

fn merge_by_id<V: Clone>(
    mine: &mut Vec<(MetricId, V)>,
    theirs: &[(MetricId, V)],
    mut combine: impl FnMut(&mut V, &V),
) {
    for (id, value) in theirs {
        match mine.binary_search_by(|(mid, _)| mid.cmp(id)) {
            Ok(at) => combine(&mut mine[at].1, value),
            Err(at) => mine.insert(at, (id.clone(), value.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_shares_the_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c_total", &[("kind", "x")]);
        let b = reg.counter("c_total", &[("kind", "x")]);
        let other = reg.counter("c_total", &[("kind", "y")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 5);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let a = MetricId::new("f", &[("b", "2"), ("a", "1")]);
        let b = MetricId::new("f", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "f{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn snapshot_merge_sums_counters_maxes_gauges() {
        let left = MetricsRegistry::new();
        let right = MetricsRegistry::new();
        left.counter("req_total", &[]).add(3);
        right.counter("req_total", &[]).add(4);
        right.counter("only_right_total", &[]).add(9);
        left.gauge("uptime_secs", &[]).set(100);
        right.gauge("uptime_secs", &[]).set(60);
        left.histogram("lat_nanos", &[]).record(8);
        right.histogram("lat_nanos", &[]).record(9);

        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        let counter = |name: &str| {
            merged
                .counters
                .iter()
                .find(|(id, _)| id.family == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(counter("req_total"), Some(7));
        assert_eq!(counter("only_right_total"), Some(9));
        assert_eq!(merged.gauges[0].1, 100, "gauges merge by max, not sum");
        assert_eq!(merged.histograms[0].1.count(), 2);

        // Merge is order-insensitive.
        let mut flipped = right.snapshot();
        flipped.merge(&left.snapshot());
        assert_eq!(merged, flipped);
    }
}
