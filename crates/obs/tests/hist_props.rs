//! Property tests for the histogram: `record`/`merge`/`summary` must be
//! associative (any merge tree over any partition of the observations
//! yields the identical snapshot) and loss-bounded (a reported quantile
//! is the log₂-bucket upper bound of the exact order statistic — never
//! below it, never more than one bucket above it).

use proptest::prelude::*;
use psketch_obs::hist::bucket_of;
use psketch_obs::{Histogram, HistogramSnapshot};

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Exact q-quantile by the same rank rule the histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn merge_is_associative_and_partition_invariant(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        psketch_obs::set_enabled(true);
        let whole = record_all(&values);

        // Split into three arbitrary parts.
        let a = cut_a.min(values.len());
        let b = cut_b.clamp(a, values.len());
        let (left, mid, right) = (&values[..a], &values[a..b], &values[b..]);
        let (sl, sm, sr) = (record_all(left), record_all(mid), record_all(right));

        // (L ⊔ M) ⊔ R
        let mut lm_r = sl.clone();
        lm_r.merge(&sm);
        lm_r.merge(&sr);
        // L ⊔ (M ⊔ R)
        let mut m_r = sm.clone();
        m_r.merge(&sr);
        let mut l_mr = sl.clone();
        l_mr.merge(&m_r);

        prop_assert_eq!(&lm_r, &whole, "grouping (LM)R diverged");
        prop_assert_eq!(&l_mr, &whole, "grouping L(MR) diverged");
        prop_assert_eq!(lm_r.summary(), whole.summary());
    }

    #[test]
    fn quantiles_are_loss_bounded_to_one_bucket(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        q_pick in 0usize..3,
    ) {
        psketch_obs::set_enabled(true);
        let q = [0.5f64, 0.9, 0.99][q_pick];
        let snap = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let reported = snap.quantile(q);

        // Never under-reports: the bound is an upper bound on the exact
        // order statistic.
        prop_assert!(
            reported >= exact,
            "quantile under-reported: exact {exact}, reported {reported}"
        );
        // Never over-reports by more than one log₂ bucket: the reported
        // value lives in the exact value's bucket (capped by the exact
        // max, which can only tighten it).
        prop_assert!(
            bucket_of(reported) <= bucket_of(exact) + 1,
            "quantile strayed beyond one bucket: exact {exact} (bucket {}), \
             reported {reported} (bucket {})",
            bucket_of(exact),
            bucket_of(reported)
        );
        // max is exact.
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
    }
}
