//! Conjunction estimators over randomized-response data — the foil for the
//! paper's headline claim.
//!
//! Given Warner-flipped profiles, two standard reconstructions recover a
//! width-`k` conjunction frequency:
//!
//! * the **product estimator** — unbiased, with variance inflated by
//!   `(1−2p)^{−2k}`: *exponential in the conjunction width*;
//! * the **matrix estimator** — the Appendix F linear system specialized
//!   to physical bits; its error is governed by the condition number of
//!   `V`, which also grows exponentially in `k`.
//!
//! "The error introduced seems to grow exponentially in the number of bits
//! involved and thus only appears to be useful for answering short […]
//! conjunctive queries" — experiment E5 measures both estimators against
//! the width-independent sketch estimator.

use psketch_core::{recover_from_bits, BitString, BitSubset, Error, Profile};
use psketch_queries::PerturbedBitTable;

/// A randomized-response view of a population: flipped profiles plus the
/// flip probability that produced them.
#[derive(Debug, Clone)]
pub struct RrDatabase {
    flip_p: f64,
    profiles: Vec<Profile>,
}

impl RrDatabase {
    /// Wraps flipped profiles.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidBias`] unless `0 < flip_p < 1/2`;
    /// [`Error::EmptyDatabase`] for no profiles.
    pub fn new(flip_p: f64, profiles: Vec<Profile>) -> Result<Self, Error> {
        if !(flip_p > 0.0 && flip_p < 0.5) {
            return Err(Error::InvalidBias { p: flip_p });
        }
        if profiles.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        Ok(Self { flip_p, profiles })
    }

    /// Number of users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the database is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The flip probability.
    #[must_use]
    pub fn flip_p(&self) -> f64 {
        self.flip_p
    }

    /// Per-user *match rows* for a conjunction `d_B = v`: entry `j` is
    /// whether the observed bit at `B[j]` equals `v[j]` — the true match
    /// indicator flipped with probability `p`.
    fn match_rows(&self, subset: &BitSubset, value: &BitString) -> Vec<Vec<bool>> {
        self.profiles
            .iter()
            .map(|profile| {
                subset
                    .positions()
                    .iter()
                    .enumerate()
                    .map(|(j, &pos)| profile.get(pos as usize) == value.get(j))
                    .collect()
            })
            .collect()
    }

    /// Product-estimator for `freq(d_B = v)`.
    ///
    /// Unbiased; standard deviation scales as `(1−2p)^{−k}/√M`.
    ///
    /// # Errors
    ///
    /// Width mismatches surface as [`Error::WidthMismatch`].
    pub fn product_estimate(&self, subset: &BitSubset, value: &BitString) -> Result<f64, Error> {
        if subset.len() != value.len() {
            return Err(Error::WidthMismatch {
                subset: subset.len(),
                value: value.len(),
            });
        }
        let k = subset.len();
        let mut table = PerturbedBitTable::new(vec![self.flip_p; k]);
        for row in self.match_rows(subset, value) {
            table.push_row(row)?;
        }
        let constraints: Vec<(usize, bool)> = (0..k).map(|c| (c, true)).collect();
        table.estimate_conjunction(&constraints)
    }

    /// Matrix-estimator (Appendix F system on physical bits) for
    /// `freq(d_B = v)`.
    ///
    /// # Errors
    ///
    /// As [`RrDatabase::product_estimate`].
    pub fn matrix_estimate(&self, subset: &BitSubset, value: &BitString) -> Result<f64, Error> {
        if subset.len() != value.len() {
            return Err(Error::WidthMismatch {
                subset: subset.len(),
                value: value.len(),
            });
        }
        let rows = self.match_rows(subset, value);
        let est = recover_from_bits(subset.len(), self.flip_p, rows)?;
        Ok(est.all_satisfied())
    }

    /// The product estimator's variance inflation `(1−2p)^{−2k}` at width
    /// `k` — the quantity that makes RR-style reconstruction collapse for
    /// wide conjunctions.
    #[must_use]
    pub fn variance_inflation(&self, k: usize) -> f64 {
        (1.0 - 2.0 * self.flip_p).powi(-2 * k as i32)
    }
}

/// Flips every profile of a population through a Warner channel.
///
/// Convenience for experiments: `(flip_p, rng, profiles) → RrDatabase`.
///
/// # Errors
///
/// As [`RrDatabase::new`].
pub fn randomize_profiles<R: rand::Rng + ?Sized>(
    flip_p: f64,
    profiles: impl IntoIterator<Item = Profile>,
    rng: &mut R,
) -> Result<RrDatabase, Error> {
    let channel = crate::warner::WarnerChannel::new(flip_p)?;
    let flipped: Vec<Profile> = profiles
        .into_iter()
        .map(|p| channel.flip_profile(&p, rng))
        .collect();
    RrDatabase::new(flip_p, flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    /// A population where a planted fraction satisfies the all-ones value
    /// on the first k bits.
    fn planted(m: usize, k: usize, fraction: f64) -> Vec<Profile> {
        (0..m)
            .map(|i| {
                let mut bits = vec![true; k];
                if (i as f64) >= fraction * m as f64 {
                    bits[i % k] = false;
                }
                Profile::from_bits(&bits)
            })
            .collect()
    }

    #[test]
    fn product_estimator_recovers_narrow_conjunctions() {
        let mut rng = Prg::seed_from_u64(90);
        let db = randomize_profiles(0.2, planted(40_000, 3, 0.45), &mut rng).unwrap();
        let subset = BitSubset::range(0, 3);
        let value = BitString::from_bits(&[true; 3]);
        let est = db.product_estimate(&subset, &value).unwrap();
        assert!((est - 0.45).abs() < 0.03, "product estimate {est}");
    }

    #[test]
    fn matrix_estimator_recovers_narrow_conjunctions() {
        let mut rng = Prg::seed_from_u64(91);
        let db = randomize_profiles(0.2, planted(40_000, 3, 0.45), &mut rng).unwrap();
        let subset = BitSubset::range(0, 3);
        let value = BitString::from_bits(&[true; 3]);
        let est = db.matrix_estimate(&subset, &value).unwrap();
        assert!((est - 0.45).abs() < 0.03, "matrix estimate {est}");
    }

    #[test]
    fn error_grows_with_width() {
        // The headline contrast: at fixed M, widening the conjunction
        // degrades RR estimates. Measure RMS error over repetitions.
        let m = 4_000;
        let p = 0.3;
        let rms = |k: usize| {
            let mut sq = 0.0;
            let reps = 12;
            for rep in 0..reps {
                let mut rng = Prg::seed_from_u64(92 + rep);
                let db = randomize_profiles(p, planted(m, k, 0.5), &mut rng).unwrap();
                let subset = BitSubset::range(0, k as u32);
                let value = BitString::from_bits(&vec![true; k]);
                let est = db.product_estimate(&subset, &value).unwrap();
                sq += (est - 0.5_f64).powi(2);
            }
            (sq / reps as f64).sqrt()
        };
        let narrow = rms(2);
        let wide = rms(10);
        assert!(
            wide > 4.0 * narrow,
            "width-10 RMS {wide} should dwarf width-2 RMS {narrow}"
        );
    }

    #[test]
    fn variance_inflation_is_exponential() {
        let db = RrDatabase::new(0.3, vec![Profile::zeros(1)]).unwrap();
        let ratio = db.variance_inflation(8) / db.variance_inflation(4);
        assert!((ratio - db.variance_inflation(4)).abs() < 1e-6);
        assert!(db.variance_inflation(16) > 1e10);
    }

    #[test]
    fn negated_values_supported() {
        let mut rng = Prg::seed_from_u64(93);
        // All users have bit0=1, bit1=0.
        let profiles = vec![Profile::from_bits(&[true, false]); 20_000];
        let db = randomize_profiles(0.25, profiles, &mut rng).unwrap();
        let subset = BitSubset::range(0, 2);
        let est = db
            .product_estimate(&subset, &BitString::from_bits(&[true, false]))
            .unwrap();
        assert!((est - 1.0).abs() < 0.05, "negated estimate {est}");
    }

    #[test]
    fn construction_errors() {
        assert!(RrDatabase::new(0.5, vec![Profile::zeros(1)]).is_err());
        assert!(RrDatabase::new(0.2, vec![]).is_err());
        let db = RrDatabase::new(0.2, vec![Profile::zeros(2)]).unwrap();
        assert!(db
            .product_estimate(&BitSubset::single(0), &BitString::from_bits(&[true, false]))
            .is_err());
    }
}
