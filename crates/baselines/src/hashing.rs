//! The hashing strawman of §3 — and why it is not private.
//!
//! "Sketching can be viewed as an analog of hashing but with better privacy
//! protection. Indeed, if each user hashes their value on a subset of bits
//! B, then the hash value can be used to answer the query I(B, v) […]
//! However, even though the hash function is non-reversible, it might
//! violate privacy. Indeed, if Bob knows that Alice's private value can be
//! only one out of 100 known possible values, then once he sees the hash
//! value, by applying the hash function to each potential value, he can
//! deduce the original value."
//!
//! [`HashPublisher`] is that scheme; the dictionary attack that breaks it
//! lives in [`crate::attacks`].

use psketch_core::{BitString, BitSubset, Profile, UserId};
use psketch_prf::{GlobalKey, InputEncoder, Prf, SipPrf};

/// Domain tag for the hashing strawman (distinct from the sketch `H`).
const DOMAIN_HASH: u8 = 0x02;

/// The hashing publisher: users release `hash(id ‖ B ‖ d_B)`.
///
/// Deterministic and exact — queries are answered *perfectly* (count users
/// whose hash equals the hash of the queried value), which is precisely
/// why it offers no privacy against an attacker who can enumerate
/// candidate values.
#[derive(Debug, Clone, Copy)]
pub struct HashPublisher {
    prf: SipPrf,
}

impl HashPublisher {
    /// Creates a publisher with a public hash key (everyone — including
    /// the attacker — can evaluate the hash, as in the paper's scenario).
    #[must_use]
    pub fn new(key: &GlobalKey) -> Self {
        Self {
            prf: SipPrf::new(key),
        }
    }

    /// The published value for `(id, d_B)`.
    #[must_use]
    pub fn publish(&self, id: UserId, subset: &BitSubset, profile: &Profile) -> u64 {
        self.hash_value(id, subset, &profile.project(subset))
    }

    /// Hash of an arbitrary candidate value (what the analyst — or the
    /// attacker — computes).
    #[must_use]
    pub fn hash_value(&self, id: UserId, subset: &BitSubset, value: &BitString) -> u64 {
        let mut enc = InputEncoder::with_domain(DOMAIN_HASH);
        enc.put_u64(id.0);
        enc.put_u32_seq(subset.positions());
        enc.put_bits(&value.to_bools());
        self.prf.eval_u64(enc.as_bytes())
    }

    /// Exact query answering: the fraction of published hashes equal to
    /// the hash of `v` — noiseless, unlike every private scheme.
    #[must_use]
    pub fn query(&self, published: &[(UserId, u64)], subset: &BitSubset, value: &BitString) -> f64 {
        if published.is_empty() {
            return 0.0;
        }
        let hits = published
            .iter()
            .filter(|(id, h)| *h == self.hash_value(*id, subset, value))
            .count();
        hits as f64 / published.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_exact() {
        let publisher = HashPublisher::new(&GlobalKey::from_seed(7));
        let subset = BitSubset::range(0, 4);
        let published: Vec<(UserId, u64)> = (0..100u64)
            .map(|i| {
                let profile = Profile::from_bits(&[i % 4 == 0, true, false, true]);
                (UserId(i), publisher.publish(UserId(i), &subset, &profile))
            })
            .collect();
        let v = BitString::from_bits(&[true, true, false, true]);
        let frac = publisher.query(&published, &subset, &v);
        assert!(
            (frac - 0.25).abs() < 1e-12,
            "hash queries are exact: {frac}"
        );
    }

    #[test]
    fn per_user_hashes_differ_for_same_value() {
        // The id is hashed in, so equal values do not collide across users
        // (matching the paper's per-user independence requirement).
        let publisher = HashPublisher::new(&GlobalKey::from_seed(7));
        let subset = BitSubset::single(0);
        let profile = Profile::from_bits(&[true]);
        let h1 = publisher.publish(UserId(1), &subset, &profile);
        let h2 = publisher.publish(UserId(2), &subset, &profile);
        assert_ne!(h1, h2);
    }

    #[test]
    fn empty_publication_queries_to_zero() {
        let publisher = HashPublisher::new(&GlobalKey::from_seed(7));
        let subset = BitSubset::single(0);
        assert_eq!(
            publisher.query(&[], &subset, &BitString::from_bits(&[true])),
            0.0
        );
    }
}
