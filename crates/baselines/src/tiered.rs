//! The Appendix A hybrid server: paid output perturbation + free sketches.
//!
//! "From a practical point of view, one might want to implement both input
//! and output perturbation in their system, and then offer two types of
//! access (for example paid and free). The paid mode would correspond to
//! output perturbation … and would only add a small noise E ≤ √M … the
//! total number of queries answered in this mode is limited … Even before
//! the system exhausts paid queries, it can be used in the second mode,
//! where it adds noise O(√M), but the database can answer an unlimited
//! number of queries."

use crate::sulq::SulqServer;
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Error, Profile, SketchDb,
    SketchParams, Sketcher, UserId,
};
use rand::Rng;

/// Which access tier answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Output perturbation: low noise, budgeted.
    Paid,
    /// Sketch-based input perturbation: unlimited.
    Free,
}

/// A fractional count answer with its serving tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredAnswer {
    /// Estimated count of satisfying users.
    pub count: f64,
    /// The tier that served it.
    pub tier: Tier,
}

/// The two-tier server of Appendix A.
///
/// Construction ingests the raw data once: the paid tier keeps it (it is
/// the trusted component), the free tier immediately converts it into
/// sketches and *could* discard the raw data — queries on the free tier
/// touch only sketches.
#[derive(Debug)]
pub struct TieredServer {
    paid: SulqServer,
    free_db: SketchDb,
    estimator: ConjunctiveEstimator,
    population: usize,
}

impl TieredServer {
    /// Builds the server over raw profiles.
    ///
    /// `params` configures the free (sketch) tier; the paid tier uses
    /// noise `√M` and the Appendix A budget `min(E², M) = M`.
    /// `subsets` is the sketching plan for the free tier.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] for an empty population; sketching errors
    /// propagate (exhaustion is skipped per-user, as usual).
    pub fn new<R: Rng + ?Sized>(
        profiles: Vec<Profile>,
        params: SketchParams,
        subsets: &[BitSubset],
        rng: &mut R,
    ) -> Result<Self, Error> {
        if profiles.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let m = profiles.len();
        let noise = (m as f64).sqrt();
        let budget = SulqServer::default_budget(noise, m);
        let free_db = SketchDb::new();
        let sketcher = Sketcher::new(params);
        for (i, profile) in profiles.iter().enumerate() {
            for subset in subsets {
                match sketcher.sketch(UserId(i as u64), profile, subset, rng) {
                    Ok(sketch) => free_db.insert(subset.clone(), UserId(i as u64), sketch),
                    Err(Error::KeySpaceExhausted { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(Self {
            paid: SulqServer::new(profiles, noise, budget)?,
            free_db,
            estimator: ConjunctiveEstimator::new(params),
            population: m,
        })
    }

    /// Remaining paid-tier budget.
    #[must_use]
    pub fn paid_remaining(&self) -> u64 {
        self.paid.remaining()
    }

    /// Answers a conjunction count, preferring the paid tier while its
    /// budget lasts and degrading to the free tier afterwards — exactly
    /// the Appendix A service model.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownSubset`] if the free tier must serve but the
    ///   subset was never sketched;
    /// * width errors from query construction.
    pub fn answer_count<R: Rng + ?Sized>(
        &mut self,
        subset: &BitSubset,
        value: &BitString,
        rng: &mut R,
    ) -> Result<TieredAnswer, Error> {
        if self.paid.remaining() > 0 {
            let count = self.paid.answer_count(subset, value, rng)?;
            return Ok(TieredAnswer {
                count,
                tier: Tier::Paid,
            });
        }
        let query = ConjunctiveQuery::new(subset.clone(), value.clone())?;
        let est = self.estimator.estimate(&self.free_db, &query)?;
        Ok(TieredAnswer {
            count: est.fraction * self.population as f64,
            tier: Tier::Free,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn build(m: usize) -> (TieredServer, BitSubset, f64, Prg) {
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(91)).unwrap();
        let subset = BitSubset::range(0, 2);
        let profiles: Vec<Profile> = (0..m)
            .map(|i| Profile::from_bits(&[i % 4 == 0, i % 2 == 0]))
            .collect();
        let truth = profiles.iter().filter(|p| p.get(0) && p.get(1)).count() as f64;
        let mut rng = Prg::seed_from_u64(92);
        let server =
            TieredServer::new(profiles, params, std::slice::from_ref(&subset), &mut rng).unwrap();
        (server, subset, truth, rng)
    }

    #[test]
    fn paid_tier_serves_until_budget_then_free_takes_over() {
        let m = 2_000;
        let (mut server, subset, truth, mut rng) = build(m);
        let budget = server.paid_remaining();
        assert_eq!(budget, m as u64); // min(E², M) with E = √M
        let value = BitString::from_bits(&[true, true]);
        let mut paid_answers = 0u64;
        let mut free_answers = 0u64;
        for _ in 0..(budget + 500) {
            let ans = server.answer_count(&subset, &value, &mut rng).unwrap();
            match ans.tier {
                Tier::Paid => paid_answers += 1,
                Tier::Free => free_answers += 1,
            }
            // Every answer, of either tier, is in the right ballpark:
            // noise is O(√M) ≈ 45.
            assert!(
                (ans.count - truth).abs() < 8.0 * (m as f64).sqrt(),
                "answer {} too far from truth {truth}",
                ans.count
            );
        }
        assert_eq!(paid_answers, budget);
        assert_eq!(free_answers, 500);
        assert_eq!(server.paid_remaining(), 0);
    }

    #[test]
    fn free_tier_requires_sketched_subsets() {
        let (mut server, _subset, _truth, mut rng) = build(100);
        // Exhaust the paid tier.
        let value = BitString::from_bits(&[true]);
        let unsketched = BitSubset::single(1);
        while server.paid_remaining() > 0 {
            let _ = server.answer_count(&unsketched, &value, &mut rng).unwrap();
        }
        assert!(matches!(
            server.answer_count(&unsketched, &value, &mut rng),
            Err(Error::UnknownSubset { .. })
        ));
    }

    #[test]
    fn empty_population_rejected() {
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(93)).unwrap();
        let mut rng = Prg::seed_from_u64(94);
        assert!(matches!(
            TieredServer::new(vec![], params, &[], &mut rng),
            Err(Error::EmptyDatabase)
        ));
    }
}
