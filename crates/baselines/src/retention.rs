//! Retention replacement (Agrawal, Srikant & Thomas, SIGMOD 2005) — the
//! non-binary baseline and its privacy weakness.
//!
//! "Each user keeps their true value with fixed probability, or replaces
//! their true value with noise. Arbitrary queries involving a fixed number
//! of attributes can be answered with this technique. However, it has the
//! disadvantage that an attacker with prior knowledge could learn a lot
//! of information about a user." (§1.) The partial-knowledge attack is in
//! [`crate::attacks`]; this module implements the channel and its
//! estimators so both sides of that comparison are runnable.

use psketch_core::Error;
use rand::{Rng, RngExt};

/// The retention-replacement channel over a finite domain `{0, …, n−1}`:
/// keep the true value with probability `rho`, otherwise replace it with a
/// uniform domain element (possibly the true value again).
#[derive(Debug, Clone, Copy)]
pub struct RetentionChannel {
    rho: f64,
    domain_size: u64,
}

impl RetentionChannel {
    /// Creates a channel.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidBias`] unless `0 < rho < 1` and the domain has at
    /// least two elements.
    pub fn new(rho: f64, domain_size: u64) -> Result<Self, Error> {
        if !(rho > 0.0 && rho < 1.0) {
            return Err(Error::InvalidBias { p: rho });
        }
        if domain_size < 2 {
            return Err(Error::InvalidBias {
                p: domain_size as f64,
            });
        }
        Ok(Self { rho, domain_size })
    }

    /// The retention probability.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The domain size.
    #[must_use]
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Perturbs one value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    #[must_use]
    pub fn perturb<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> u64 {
        assert!(value < self.domain_size, "value outside domain");
        if rng.random::<f64>() < self.rho {
            value
        } else {
            rng.random_range(0..self.domain_size)
        }
    }

    /// Perturbs a sequence of values independently (the intro's
    /// `⟨1,1,2,2,3,3⟩ → ⟨1,9,8,2,3,5⟩` scenario).
    #[must_use]
    pub fn perturb_sequence<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<u64> {
        values.iter().map(|&v| self.perturb(v, rng)).collect()
    }

    /// Unbiased inversion of a point frequency: from the observed fraction
    /// of users reporting `v`, estimates the true fraction holding `v`:
    /// `E[f̃(v)] = ρ·f(v) + (1−ρ)/n`.
    #[must_use]
    pub fn estimate_point(&self, observed_fraction: f64) -> f64 {
        (observed_fraction - (1.0 - self.rho) / self.domain_size as f64) / self.rho
    }

    /// Unbiased inversion of an interval frequency `P[a ≤ c]`:
    /// `E[f̃(≤c)] = ρ·f(≤c) + (1−ρ)·(c+1)/n`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the domain.
    #[must_use]
    pub fn estimate_interval(&self, observed_fraction: f64, c: u64) -> f64 {
        assert!(c < self.domain_size);
        let baseline = (1.0 - self.rho) * (c + 1) as f64 / self.domain_size as f64;
        (observed_fraction - baseline) / self.rho
    }

    /// The worst-case single-value likelihood ratio
    /// `Pr[obs = v | true = v] / Pr[obs = v | true ≠ v]
    ///  = (ρ + (1−ρ)/n)/((1−ρ)/n) = 1 + ρ·n/(1−ρ)`.
    ///
    /// Unlike the sketch bound (Lemma 3.3), this grows **linearly in the
    /// domain size** — retention replacement is *not* ε-private for any
    /// domain-independent ε, which is exactly the paper's complaint.
    #[must_use]
    pub fn privacy_ratio(&self) -> f64 {
        1.0 + self.rho * self.domain_size as f64 / (1.0 - self.rho)
    }

    /// Per-observation log-likelihood of an observed value given a
    /// hypothesized true value (used by the partial-knowledge attack).
    #[must_use]
    pub fn log_likelihood(&self, observed: u64, hypothesis: u64) -> f64 {
        let noise = (1.0 - self.rho) / self.domain_size as f64;
        if observed == hypothesis {
            (self.rho + noise).ln()
        } else {
            noise.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(RetentionChannel::new(0.0, 10).is_err());
        assert!(RetentionChannel::new(1.0, 10).is_err());
        assert!(RetentionChannel::new(0.5, 1).is_err());
        assert!(RetentionChannel::new(0.5, 2).is_ok());
    }

    #[test]
    fn retention_rate_matches_rho() {
        let ch = RetentionChannel::new(0.7, 100).unwrap();
        let mut rng = Prg::seed_from_u64(100);
        let n = 50_000;
        let kept = (0..n).filter(|_| ch.perturb(42, &mut rng) == 42).count();
        // P[obs = true] = ρ + (1−ρ)/n = 0.7 + 0.003.
        let rate = kept as f64 / n as f64;
        assert!((rate - 0.703).abs() < 0.01, "kept rate {rate}");
    }

    #[test]
    fn point_estimation_roundtrip() {
        let ch = RetentionChannel::new(0.6, 16).unwrap();
        let mut rng = Prg::seed_from_u64(101);
        let m = 60_000;
        // 30% of users hold value 5, the rest hold 9.
        let observed_5 = (0..m)
            .filter(|&i| ch.perturb(if i % 10 < 3 { 5 } else { 9 }, &mut rng) == 5)
            .count();
        let est = ch.estimate_point(observed_5 as f64 / m as f64);
        assert!((est - 0.3).abs() < 0.02, "point estimate {est}");
    }

    #[test]
    fn interval_estimation_roundtrip() {
        let ch = RetentionChannel::new(0.5, 32).unwrap();
        let mut rng = Prg::seed_from_u64(102);
        let m = 60_000;
        // True values uniform on {0..7}: P[v ≤ 3] = 0.5.
        let observed = (0..m).filter(|&i| ch.perturb(i % 8, &mut rng) <= 3).count();
        let est = ch.estimate_interval(observed as f64 / m as f64, 3);
        assert!((est - 0.5).abs() < 0.02, "interval estimate {est}");
    }

    #[test]
    fn privacy_ratio_grows_with_domain() {
        let small = RetentionChannel::new(0.5, 10).unwrap().privacy_ratio();
        let large = RetentionChannel::new(0.5, 1000).unwrap().privacy_ratio();
        assert!((small - 11.0).abs() < 1e-12);
        assert!((large - 1001.0).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_prefers_truth() {
        let ch = RetentionChannel::new(0.4, 10).unwrap();
        assert!(ch.log_likelihood(3, 3) > ch.log_likelihood(3, 4));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_value_rejected() {
        let ch = RetentionChannel::new(0.5, 4).unwrap();
        let mut rng = Prg::seed_from_u64(103);
        let _ = ch.perturb(4, &mut rng);
    }
}
