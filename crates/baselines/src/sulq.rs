//! Output perturbation (SULQ-style) — the Appendix A comparison.
//!
//! Appendix A positions sketches against the output-perturbation model of
//! Blum–Dwork–McSherry–Nissim: a trusted server holds the raw data and
//! answers counting queries with additive noise `E ≤ √M`, but "the total
//! number of queries answered in this mode is limited (by the minimum of
//! E² and the total number of users in the database). Once the limit of
//! queries is exhausted the system will stop answering."
//!
//! [`SulqServer`] implements that contract so experiment E13 can put the
//! two regimes side by side: bounded queries at `√M` noise (here) versus
//! unlimited queries at `O(√M)` noise (sketches).

use psketch_core::{BitString, BitSubset, Error, Profile};
use rand::{Rng, RngExt};

/// A trusted-server counting oracle with additive Gaussian noise and a
/// hard query budget.
#[derive(Debug)]
pub struct SulqServer {
    profiles: Vec<Profile>,
    noise_std: f64,
    max_queries: u64,
    answered: u64,
}

impl SulqServer {
    /// Creates a server over raw profiles.
    ///
    /// `noise_std` is the per-answer noise standard deviation (Appendix A's
    /// `E`); `max_queries` the budget (Appendix A suggests `min(E², M)`).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] when no profiles are supplied.
    pub fn new(profiles: Vec<Profile>, noise_std: f64, max_queries: u64) -> Result<Self, Error> {
        if profiles.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        Ok(Self {
            profiles,
            noise_std,
            max_queries,
            answered: 0,
        })
    }

    /// The Appendix A default budget `min(E², M)`.
    #[must_use]
    pub fn default_budget(noise_std: f64, m: usize) -> u64 {
        let e2 = (noise_std * noise_std).floor();
        (e2 as u64).min(m as u64)
    }

    /// Queries answered so far.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Remaining budget.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.max_queries - self.answered
    }

    /// Answers a conjunction *count* query with additive noise, consuming
    /// one unit of budget.
    ///
    /// # Errors
    ///
    /// [`Error::BudgetExceeded`] once the budget is exhausted — the
    /// server "will stop answering those queries".
    pub fn answer_count<R: Rng + ?Sized>(
        &mut self,
        subset: &BitSubset,
        value: &BitString,
        rng: &mut R,
    ) -> Result<f64, Error> {
        if self.answered >= self.max_queries {
            return Err(Error::BudgetExceeded {
                spent: self.answered as f64,
                budget: self.max_queries as f64,
            });
        }
        self.answered += 1;
        let true_count = self
            .profiles
            .iter()
            .filter(|p| p.satisfies(subset, value))
            .count() as f64;
        Ok(true_count + self.noise_std * standard_normal(rng))
    }
}

/// A standard normal variate via the Box–Muller transform.
///
/// `rand` ships no Gaussian distribution in this workspace's dependency
/// set, and two uniforms per variate is plenty for experiment noise.
#[must_use]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    fn profiles(m: usize) -> Vec<Profile> {
        (0..m)
            .map(|i| Profile::from_bits(&[i % 4 == 0, i % 2 == 0]))
            .collect()
    }

    #[test]
    fn answers_are_noisy_but_centered() {
        let m = 10_000;
        let mut server = SulqServer::new(profiles(m), (m as f64).sqrt(), 1_000).unwrap();
        let mut rng = Prg::seed_from_u64(110);
        let subset = BitSubset::single(0);
        let v = BitString::from_bits(&[true]);
        let answers: Vec<f64> = (0..200)
            .map(|_| server.answer_count(&subset, &v, &mut rng).unwrap())
            .collect();
        let mean = answers.iter().sum::<f64>() / answers.len() as f64;
        let truth = (m / 4) as f64;
        // Noise std = 100; SE of mean of 200 ≈ 7.
        assert!((mean - truth).abs() < 30.0, "mean answer {mean} vs {truth}");
        // And individual answers are genuinely noisy.
        let distinct: std::collections::HashSet<u64> =
            answers.iter().map(|a| a.to_bits()).collect();
        assert!(distinct.len() > 150, "answers look deterministic");
    }

    #[test]
    fn budget_is_enforced() {
        let mut server = SulqServer::new(profiles(100), 10.0, 3).unwrap();
        let mut rng = Prg::seed_from_u64(111);
        let subset = BitSubset::single(0);
        let v = BitString::from_bits(&[true]);
        for _ in 0..3 {
            server.answer_count(&subset, &v, &mut rng).unwrap();
        }
        assert_eq!(server.remaining(), 0);
        assert!(matches!(
            server.answer_count(&subset, &v, &mut rng),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn default_budget_formula() {
        assert_eq!(SulqServer::default_budget(10.0, 1_000), 100);
        assert_eq!(SulqServer::default_budget(100.0, 1_000), 1_000);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = Prg::seed_from_u64(112);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "normal variance {var}");
    }

    #[test]
    fn empty_database_rejected() {
        assert!(SulqServer::new(vec![], 1.0, 1).is_err());
    }
}
