//! # psketch-baselines — every comparator the paper discusses
//!
//! The paper's claims are comparative; this crate makes each comparison
//! runnable:
//!
//! * [`warner`] — Warner's randomized response (bit flipping), the §2 and
//!   Appendix B baseline;
//! * [`rr_estimators`] — product and matrix reconstructions of conjunction
//!   frequencies over flipped bits, whose error grows exponentially in the
//!   conjunction width (the foil for the paper's width-independent
//!   sketches);
//! * [`retention`] — retention replacement (Agrawal et al.) for
//!   non-binary data, with its domain-size-linear privacy ratio;
//! * [`hashing`] — the §3 hashing strawman: exact queries, no privacy;
//! * [`sulq`] — output perturbation with a query budget (Appendix A);
//! * [`tiered`] — Appendix A's hybrid service: paid output perturbation
//!   degrading to free sketch-based answers when the budget runs out;
//! * [`attacks`] — the dictionary attack, the intro's partial-knowledge
//!   attack, and the exact-posterior sketch attacker that fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod hashing;
pub mod retention;
pub mod rr_estimators;
pub mod sulq;
pub mod tiered;
pub mod warner;

pub use attacks::{dictionary_attack, retention_posterior, sketch_posterior};
pub use hashing::HashPublisher;
pub use retention::RetentionChannel;
pub use rr_estimators::{randomize_profiles, RrDatabase};
pub use sulq::{standard_normal, SulqServer};
pub use tiered::{Tier, TieredAnswer, TieredServer};
pub use warner::WarnerChannel;
