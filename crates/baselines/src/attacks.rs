//! The attack gallery: what breaks the strawmen, and why sketches survive.
//!
//! Three attackers from the paper's narrative, all runnable:
//!
//! 1. **Dictionary attack on hashing** (§3): knowing a candidate set, the
//!    attacker hashes every candidate and reads off the victim's value.
//! 2. **Partial-knowledge attack on retention replacement** (§1): "if an
//!    attacker knows that someone's private value is either ⟨1,1,2,2,3,3⟩
//!    or ⟨4,4,5,5,6,6⟩ then seeing the perturbed sequence ⟨1,9,8,2,3,5⟩
//!    virtually reveals the exact private data."
//! 3. **The same attacks against sketches** fail: the exact posterior over
//!    candidates moves from the prior by at most the Lemma 3.3 factor
//!    `((1−p)/p)⁴`, no matter how much partial knowledge the attacker has.

use crate::hashing::HashPublisher;
use crate::retention::RetentionChannel;
use psketch_core::{
    exact::outcome_probs, BitString, BitSubset, HFunction, Sketch, SketchParams, UserId,
};

/// Dictionary attack on the hashing strawman.
///
/// Returns the candidate values whose hash matches the published hash —
/// for a collision-free hash over a small candidate set this is almost
/// surely exactly the victim's value.
#[must_use]
pub fn dictionary_attack(
    publisher: &HashPublisher,
    id: UserId,
    subset: &BitSubset,
    published_hash: u64,
    candidates: &[BitString],
) -> Vec<BitString> {
    candidates
        .iter()
        .filter(|v| publisher.hash_value(id, subset, v) == published_hash)
        .cloned()
        .collect()
}

/// Posterior over candidate *sequences* after observing a retention-
/// replacement perturbed sequence, starting from a uniform prior.
///
/// # Panics
///
/// Panics if candidate lengths differ from the observation's.
#[must_use]
pub fn retention_posterior(
    channel: &RetentionChannel,
    observed: &[u64],
    candidates: &[Vec<u64>],
) -> Vec<f64> {
    let log_likes: Vec<f64> = candidates
        .iter()
        .map(|cand| {
            assert_eq!(cand.len(), observed.len(), "candidate length mismatch");
            cand.iter()
                .zip(observed)
                .map(|(&h, &o)| channel.log_likelihood(o, h))
                .sum()
        })
        .collect();
    normalize_log_posteriors(&log_likes)
}

/// Exact posterior over candidate values after observing a published
/// *sketch*, starting from a uniform prior.
///
/// The attacker is maximally strong: computationally unbounded, knowing
/// the global key (it is public), able to evaluate `H(id, B, v, s)` for
/// every candidate `v` and every key `s`. The likelihood of the observed
/// sketch under candidate `v` follows from the exact `Z^(q)` analysis:
/// count how many keys evaluate to 1 under `v`, then the publish
/// probability of the observed key depends only on that count and the
/// observed key's own evaluation (Lemma 3.3's permutation symmetry).
#[must_use]
pub fn sketch_posterior(
    params: &SketchParams,
    id: UserId,
    subset: &BitSubset,
    sketch: Sketch,
    candidates: &[BitString],
) -> Vec<f64> {
    let h = HFunction::new(params);
    let l = params.key_space();
    let r = params.accept_prob();
    let log_likes: Vec<f64> = candidates
        .iter()
        .map(|v| {
            let q = (0..l).filter(|&s| h.eval(id, subset, v, s)).count() as u64;
            let probs = outcome_probs(l, q, r);
            let like = if h.eval(id, subset, v, sketch.key) {
                probs.publish_one_key
            } else {
                probs.publish_zero_key
            };
            like.ln()
        })
        .collect();
    normalize_log_posteriors(&log_likes)
}

/// Numerically stable softmax over log-posteriors (uniform prior).
fn normalize_log_posteriors(log_likes: &[f64]) -> Vec<f64> {
    let max = log_likes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = log_likes.iter().map(|&ll| (ll - max).exp()).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{theory::privacy_ratio_bound, Profile, Sketcher};
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    #[test]
    fn dictionary_attack_recovers_hashed_value() {
        // Bob knows Alice's value is one of 100 possibilities (§3).
        let publisher = HashPublisher::new(&GlobalKey::from_seed(9));
        let subset = BitSubset::range(0, 7);
        let candidates: Vec<BitString> = (0..100u64).map(|v| BitString::from_u64(v, 7)).collect();
        let secret = BitString::from_u64(42, 7);
        let mut profile = Profile::zeros(7);
        for (i, b) in secret.iter().enumerate() {
            profile.set(i, b);
        }
        let published = publisher.publish(UserId(5), &subset, &profile);
        let recovered = dictionary_attack(&publisher, UserId(5), &subset, published, &candidates);
        assert_eq!(recovered, vec![secret], "attack must recover the value");
    }

    #[test]
    fn retention_attack_virtually_reveals_the_value() {
        // The introduction's example, numerically.
        let channel = RetentionChannel::new(0.5, 10).unwrap();
        let cand_a = vec![1u64, 1, 2, 2, 3, 3];
        let cand_b = vec![4u64, 4, 5, 5, 6, 6];
        let mut rng = Prg::seed_from_u64(120);
        // Average posterior mass on the true candidate over many trials.
        let trials = 400;
        let mut mass_on_truth = 0.0;
        for _ in 0..trials {
            let observed = channel.perturb_sequence(&cand_a, &mut rng);
            let post = retention_posterior(&channel, &observed, &[cand_a.clone(), cand_b.clone()]);
            mass_on_truth += post[0];
        }
        mass_on_truth /= trials as f64;
        assert!(
            mass_on_truth > 0.95,
            "partial knowledge should virtually reveal the value: {mass_on_truth}"
        );
    }

    #[test]
    fn sketch_posterior_stays_near_prior() {
        // The same two-candidate attacker against a sketch: the posterior
        // is bounded by the prior times the Lemma 3.3 ratio, so with a
        // uniform prior over 2 candidates it cannot exceed
        // bound/(bound + 1); with p = 0.45 that is ≈ 0.69 — and on
        // average it stays near 1/2.
        let p = 0.45;
        let params = SketchParams::with_sip(p, 6, GlobalKey::from_seed(10)).unwrap();
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, 6);
        let cand_a = BitString::from_u64(17, 6);
        let cand_b = BitString::from_u64(44, 6);
        let mut rng = Prg::seed_from_u64(121);
        let bound = privacy_ratio_bound(p);
        let cap = bound / (bound + 1.0);
        let trials = 300;
        let mut mass_on_truth = 0.0;
        for t in 0..trials {
            let id = UserId(t);
            let run = sketcher
                .sketch_value_with_stats(id, &subset, &cand_a, &mut rng)
                .unwrap();
            let post = sketch_posterior(
                &params,
                id,
                &subset,
                run.sketch,
                &[cand_a.clone(), cand_b.clone()],
            );
            assert!(
                post[0] <= cap + 1e-9,
                "posterior {} exceeds the Lemma 3.3 cap {cap}",
                post[0]
            );
            mass_on_truth += post[0];
        }
        mass_on_truth /= trials as f64;
        assert!(
            mass_on_truth < 0.60,
            "sketch attacker should learn almost nothing: {mass_on_truth}"
        );
        assert!(
            mass_on_truth > 0.48,
            "posterior should not be anti-informative: {mass_on_truth}"
        );
    }

    #[test]
    fn sketch_posterior_is_a_distribution() {
        let params = SketchParams::with_sip(0.3, 4, GlobalKey::from_seed(11)).unwrap();
        let candidates: Vec<BitString> = (0..8u64).map(|v| BitString::from_u64(v, 3)).collect();
        let post = sketch_posterior(
            &params,
            UserId(1),
            &BitSubset::range(0, 3),
            Sketch { key: 2 },
            &candidates,
        );
        let total: f64 = post.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(post.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn retention_posterior_length_checked() {
        let channel = RetentionChannel::new(0.5, 10).unwrap();
        let _ = retention_posterior(&channel, &[1, 2], &[vec![1]]);
    }
}
