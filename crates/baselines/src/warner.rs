//! Warner's randomized response — the bit-flipping baseline.
//!
//! "One solution, known as randomized response advocated by Warner in the
//! 1960s, amounts essentially to flipping bits in the private data. […] if
//! each individual flips their bit with probability p just a tinge under
//! 1/2, i.e., p = 1/2 − ε then we can simultaneously ensure privacy and
//! estimate the fraction of '1's." (§1/§2 and Appendix B.)
//!
//! This channel is both the historical baseline and the paper's own
//! single-bit special case ("the original randomized response is a special
//! case of our technique where we sketch each bit individually").

use psketch_core::{Error, Profile};
use psketch_prf::Bias;
use rand::Rng;

/// The Warner randomized-response channel: each bit flips independently
/// with probability `p < 1/2`.
#[derive(Debug, Clone, Copy)]
pub struct WarnerChannel {
    p: f64,
    bias: Bias,
}

impl WarnerChannel {
    /// Creates a channel.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidBias`] unless `0 < p < 1/2`.
    pub fn new(p: f64) -> Result<Self, Error> {
        if !(p > 0.0 && p < 0.5) {
            return Err(Error::InvalidBias { p });
        }
        Ok(Self {
            p,
            bias: Bias::from_prob(p),
        })
    }

    /// The flip probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Perturbs one bit.
    #[must_use]
    pub fn flip_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        bit ^ self.bias.decide(rng.next_u64())
    }

    /// Perturbs a whole profile (every bit independently).
    ///
    /// Note the paper's §1 critique: "if a user has a relatively sparse
    /// private vector then the resulting perturbed vector may be quite
    /// dense" — the output of this method on a sparse profile has expected
    /// density ≈ `p`.
    #[must_use]
    pub fn flip_profile<R: Rng + ?Sized>(&self, profile: &Profile, rng: &mut R) -> Profile {
        let mut out = profile.clone();
        for i in 0..profile.num_attributes() {
            out.set(i, self.flip_bit(profile.get(i), rng));
        }
        out
    }

    /// Unbiased inversion for a single bit: given the observed fraction of
    /// ones `r̃`, returns the estimated true fraction
    /// `r = (r̃ − p)/(1 − 2p)` (§2's `E[r̃] = (1−p)r + p(1−r)` solved for r).
    #[must_use]
    pub fn estimate_single_bit(&self, observed_fraction: f64) -> f64 {
        (observed_fraction - self.p) / (1.0 - 2.0 * self.p)
    }

    /// The ε for which this channel is ε-private (Appendix B): the
    /// worst-case likelihood ratio minus one, `max(p, 1−p)/min(p, 1−p) − 1
    /// = (1−p)/p − 1` for `p < 1/2`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        (1.0 - self.p) / self.p - 1.0
    }

    /// Appendix B's sufficient condition: with `p = 1/2 − c·ε`, the channel
    /// is ε-private provided `c ≤ 1/4`. Returns whether this instance
    /// satisfies a given ε budget.
    #[must_use]
    pub fn is_eps_private(&self, eps: f64) -> bool {
        self.epsilon() <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn rejects_out_of_range_p() {
        assert!(WarnerChannel::new(0.0).is_err());
        assert!(WarnerChannel::new(0.5).is_err());
        assert!(WarnerChannel::new(0.7).is_err());
        assert!(WarnerChannel::new(0.49).is_ok());
    }

    #[test]
    fn flip_rate_matches_p() {
        let ch = WarnerChannel::new(0.3).unwrap();
        let mut rng = Prg::seed_from_u64(80);
        let n = 50_000;
        let flips = (0..n).filter(|_| ch.flip_bit(false, &mut rng)).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn single_bit_estimation_roundtrip() {
        let ch = WarnerChannel::new(0.25).unwrap();
        let mut rng = Prg::seed_from_u64(81);
        let m = 80_000;
        let true_fraction = 0.37;
        let cutoff = (true_fraction * m as f64) as usize;
        let ones = (0..m)
            .filter(|&i| ch.flip_bit(i < cutoff, &mut rng))
            .count();
        let est = ch.estimate_single_bit(ones as f64 / m as f64);
        assert!(
            (est - true_fraction).abs() < 0.01,
            "estimate {est} vs {true_fraction}"
        );
    }

    #[test]
    fn sparse_profiles_become_dense() {
        // The paper's critique of bit flipping, measured.
        let ch = WarnerChannel::new(0.3).unwrap();
        let mut rng = Prg::seed_from_u64(82);
        let sparse = Profile::zeros(1000); // all-zero = maximally sparse
        let flipped = ch.flip_profile(&sparse, &mut rng);
        let density = flipped.bits().count_ones() as f64 / 1000.0;
        assert!(density > 0.25, "perturbed density {density} should be ≈ p");
    }

    #[test]
    fn appendix_b_epsilon() {
        // p = 1/2 − cε with c = 1/4, ε = 1: p = 0.25, ratio = 3, ε_achieved = 2.
        // Appendix B's claim is about the ratio bound (1+ε)-style with the
        // stated c; verify the exact ratio formula and the budget check.
        let ch = WarnerChannel::new(0.25).unwrap();
        assert!((ch.epsilon() - 2.0).abs() < 1e-12);
        assert!(ch.is_eps_private(2.0));
        assert!(!ch.is_eps_private(1.9));
        // Near-half p gives tiny ε.
        let tight = WarnerChannel::new(0.499).unwrap();
        assert!(tight.epsilon() < 0.005);
    }

    #[test]
    fn flip_profile_preserves_width() {
        let ch = WarnerChannel::new(0.1).unwrap();
        let mut rng = Prg::seed_from_u64(83);
        let p = Profile::from_bits(&[true, false, true]);
        assert_eq!(ch.flip_profile(&p, &mut rng).num_attributes(), 3);
    }
}
