//! Offline vendored stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the API surface
//! this workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`Throughput`], [`Bencher::iter`]
//! and [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical
//! machinery it calibrates an iteration count to a target measurement
//! window, takes several samples and reports the median ns/iteration
//! (and element throughput when configured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Number of samples per benchmark; the median is reported.
const SAMPLES: usize = 5;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim re-runs setup per iteration outside the timed region).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times closures and reports ns/iteration.
#[derive(Debug)]
pub struct Bencher {
    /// Measured median duration of one iteration, filled by `iter*`.
    nanos_per_iter: f64,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it fills the sample window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            let scale = if elapsed.is_zero() {
                64
            } else {
                (SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(scale.clamp(2, 64));
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.nanos_per_iter = samples[SAMPLES / 2];
    }

    /// Benchmarks `routine` with a fresh `setup` value per call; setup
    /// runs outside the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate on the routine alone.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            let scale = if elapsed.is_zero() {
                64
            } else {
                (SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(scale.clamp(2, 64));
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.nanos_per_iter = samples[SAMPLES / 2];
    }
}

/// The benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies a substring filter from the command line (`cargo bench --
    /// <filter>`), as real criterion does.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with("--") && a != "bench");
        self
    }

    fn run_one(&mut self, id: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        let per_iter = b.nanos_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.2} Melem/s)", n as f64 * 1e3 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!(
                    "  ({:.2} MiB/s)",
                    n as f64 * 1e9 / per_iter / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{id:<50} {per_iter:>14.1} ns/iter{rate}");
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.as_ref(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks with an optional throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
