//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides the slice of the API this workspace's wire-format code uses:
//! [`BytesMut`] as a growable byte buffer, [`Bytes`] as its frozen
//! (cheaply cloneable) form, [`BufMut`] little-endian writers and [`Buf`]
//! cursor-style readers over `&[u8]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte string.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::new(data.to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::new(v))
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian writes into a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential reads that advance a cursor.
///
/// Implemented for `&[u8]`, where the slice itself is the cursor — each
/// read shrinks it from the front.
///
/// # Panics
///
/// The `get_*` readers panic when fewer bytes remain than requested;
/// callers check [`Buf::remaining`] first (as the workspace's decoders
/// do).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, tail) = self.split_at(1);
        *self = tail;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4-byte split"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32_le(0x1234_5678);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 5);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32_le(), 0x1234_5678);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slicing_and_to_vec_work_via_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
