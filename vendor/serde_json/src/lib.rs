//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses the vendored `serde` shim's [`Value`] tree as JSON.
//! Floating-point numbers are rendered with Rust's shortest-round-trip
//! `{:?}` formatting, so every finite `f64` survives a round trip
//! bit-for-bit — the property the workspace's serialization tests rely
//! on. Non-finite floats are rejected at serialization time, as in real
//! JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// If the value contains a non-finite float (JSON has no representation
/// for NaN or infinities).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("JSON cannot represent non-finite floats"));
            }
            // `{:?}` is Rust's shortest representation that parses back to
            // the identical f64; it always contains '.' or 'e', keeping
            // floats distinguishable from integers on the wire.
            let _ = write!(out, "{x:?}");
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of JSON input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected ',' or '}' in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape sequence")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char at i-1.
                    let start = self.i - 1;
                    let tail = std::str::from_utf8(&self.s[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = tail.chars().next().unwrap();
                    self.i = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::msg("invalid number"))?;
        if tok.is_empty() {
            return Err(Error::msg(format!("unexpected character at byte {start}")));
        }
        let is_float = tok.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(rest) = tok.strip_prefix('-') {
                if let Ok(mag) = rest.parse::<u64>() {
                    if mag <= i64::MAX as u64 {
                        return Ok(Value::I64(-(mag as i64)));
                    }
                }
            } else if let Ok(n) = tok.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        tok.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{tok}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(from_str::<u64>("7").unwrap(), 7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.3f64, 1.0 / 3.0, -2.5e-7, 0.1 + 0.2, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), x.to_bits(), "{s}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vectors_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("7 8").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
