//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] for integer
//! and float ranges, tuples and [`collection::vec`], `any::<T>()` for the
//! primitive types, and the `prop_assert*` macros. Differences from the
//! real crate:
//!
//! * cases are generated from a fixed deterministic seed (derived from
//!   the test name), so runs are exactly reproducible and CI-stable;
//! * there is **no shrinking** — a failing case reports its inputs via
//!   the panic message of the underlying `assert!`;
//! * each property runs [`test_runner::CASES`] cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic case generation.
pub mod test_runner {
    /// Number of cases each property runs.
    pub const CASES: u32 = 64;

    /// A small deterministic generator (SplitMix64) for strategy
    /// sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, deterministically.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                state = state
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from(b));
            }
            Self { state }
        }

        /// The next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: an exact size or a size range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for vectors of `element` values with lengths from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for "any value of `T`".
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]`-able function running
/// [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: delegates to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=8).contains(&y));
        }

        #[test]
        fn vectors_respect_length(
            v in crate::collection::vec(any::<bool>(), 2..5),
            w in crate::collection::vec(any::<u8>(), 3),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn tuples_sample_both(pair in (0u64..4, 0u64..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
