//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` shim's value-tree traits
//! (`Serialize::to_value` / `Deserialize::from_value`) for plain structs —
//! the only shapes this workspace derives. Implemented directly on
//! `proc_macro` (no `syn`/`quote`, which are unavailable offline): the
//! struct is parsed with a small token walker and the impl is emitted as a
//! formatted string.
//!
//! Supported: unit structs, tuple structs (newtypes serialize
//! transparently), and named-field structs, all without generics. Enums
//! and generic types are rejected with a compile-time panic so a future
//! use surfaces loudly instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the struct being derived.
enum Fields {
    Unit,
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct StructDef {
    name: String,
    fields: Fields,
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter();
    let mut name = None;
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "struct" => break,
                "enum" | "union" => {
                    panic!("the offline serde derive supports plain structs only")
                }
                _ => {}
            }
        }
    }
    let mut fields = Fields::Unit;
    for tt in iter {
        match tt {
            TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("the offline serde derive does not support generic types")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = Fields::Named(named_fields(g.stream()));
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                fields = Fields::Tuple(tuple_arity(g.stream()));
                break;
            }
            _ => {}
        }
    }
    StructDef {
        name: name.expect("derive input must name a struct"),
        fields,
    }
}

/// Extracts field names from the body of a braced struct: for each
/// top-level `name: Type` pair, the identifier immediately preceding the
/// first `:` after a separator. `,` inside angle brackets (generic
/// arguments in field types) is not a separator.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut in_type = false;
    let mut last_ident = None;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if !in_type && angle_depth == 0 => {
                    // `::` never follows a bare field name at this point;
                    // the first top-level `:` ends the name position.
                    fields.push(
                        last_ident
                            .take()
                            .expect("field name must precede `:` in struct body"),
                    );
                    in_type = true;
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    fields
}

/// Counts fields of a tuple struct body (top-level commas + 1).
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in body {
        any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

/// `#[derive(Serialize)]` — implements the shim's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        def.name
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — implements the shim's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let name = &def.name;
    let body = match &def.fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(::serde::seq_item(v, {i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
