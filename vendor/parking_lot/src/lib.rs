//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API (the
//! only part this workspace uses): `lock()`, `read()` and `write()`
//! return guards directly instead of `Result`s. A panic while a lock is
//! held is treated as recoverable — the inner value is taken from the
//! poison wrapper, matching parking_lot's semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
