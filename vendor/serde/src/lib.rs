//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the subset of serde this workspace relies on: the
//! `#[derive(Serialize, Deserialize)]` attributes and trait impls for the
//! primitive/container types appearing in derived structs. Instead of
//! serde's visitor architecture it uses a self-describing [`Value`] tree;
//! format crates (the vendored `serde_json`) print and parse that tree.
//!
//! Round-trip fidelity is exact for every type the workspace serializes:
//! integers are carried as `u64`/`i64`, and `f64` survives bit-for-bit
//! through the shortest-round-trip `{:?}` rendering used by the JSON
//! front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Let the `::serde::...` paths emitted by the derive macros resolve when
// the derives are used inside this crate's own tests.
extern crate self as serde;

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (unit structs, `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys in insertion order.
    Map(Vec<(String, Value)>),
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named field in a map value (derive-generated code calls
/// this).
///
/// # Errors
///
/// If `v` is not a map or the field is absent.
pub fn map_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!(
            "expected map with field `{name}`, found {other:?}"
        ))),
    }
}

/// Indexes into a sequence value (derive-generated code for tuple structs
/// calls this).
///
/// # Errors
///
/// If `v` is not a sequence or the index is out of bounds.
pub fn seq_item(v: &Value, index: usize) -> Result<&Value, Error> {
    match v {
        Value::Seq(items) => items
            .get(index)
            .ok_or_else(|| Error::msg(format!("sequence too short: no item {index}"))),
        other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => usize::try_from(*n).map_err(|_| Error::msg("usize overflow")),
            other => Err(Error::msg(format!(
                "expected unsigned integer, found {other:?}"
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of i64 range"))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("value out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::msg(format!("expected {N} items, found {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((
            A::from_value(seq_item(v, 0)?)?,
            B::from_value(seq_item(v, 1)?)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u64,
        b: Vec<u32>,
        c: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u64);

    #[test]
    fn named_struct_roundtrips() {
        let x = Named {
            a: 7,
            b: vec![1, 2, 3],
            c: 0.25,
        };
        let v = x.to_value();
        assert_eq!(Named::from_value(&v).unwrap(), x);
    }

    #[test]
    fn newtype_is_transparent() {
        let v = Newtype(9).to_value();
        assert_eq!(v, Value::U64(9));
        assert_eq!(Newtype::from_value(&v).unwrap(), Newtype(9));
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1u8, 2, 3, 4];
        let v = a.to_value();
        assert_eq!(<[u8; 4]>::from_value(&v).unwrap(), a);
        assert!(<[u8; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn missing_fields_error() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(Named::from_value(&v).is_err());
    }
}
