//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io registry, so the workspace vendors the *exact* trait surface
//! it consumes from `rand` 0.10: [`Rng`], [`RngExt`], [`SeedableRng`] and
//! the fallible core traits under [`rand_core`]. Semantics follow the
//! upstream crate: `random::<f64>()` is uniform in `[0, 1)` with 53 bits
//! of precision, `random_range` is unbiased via rejection sampling, and
//! `seed_from_u64` expands the seed with SplitMix64.
//!
//! Every RNG in the workspace is the deterministic ChaCha20 generator from
//! `psketch-prf`, which implements [`rand_core::TryRng`]; the blanket impl
//! here lifts it (and any other infallible generator) into [`Rng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The fallible generator core: what concrete RNGs implement.
pub mod rand_core {
    pub use core::convert::Infallible;

    /// A random generator that may fail on each draw.
    ///
    /// Deterministic in-memory generators use [`Infallible`] as the error
    /// type and are lifted into [`crate::Rng`] automatically.
    pub trait TryRng {
        /// The error produced on a failed draw.
        type Error;
        /// Draws the next `u32`.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        /// Draws the next `u64`.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        /// Fills `dst` with random bytes.
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
    }

    impl<R: TryRng + ?Sized> TryRng for &mut R {
        type Error = R::Error;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
            R::try_next_u32(self)
        }

        fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
            R::try_next_u64(self)
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
            R::try_fill_bytes(self, dst)
        }
    }
}

use rand_core::{Infallible, TryRng};

/// An infallible source of uniform random words.
pub trait Rng {
    /// The next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// The next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dst` with uniform random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R> Rng for R
where
    R: TryRng<Error = Infallible> + ?Sized,
{
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let Ok(v) = self.try_next_u32();
        v
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let Ok(v) = self.try_next_u64();
        v
    }

    #[inline]
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let Ok(()) = self.try_fill_bytes(dst);
    }
}

/// Sampling of a value from the "standard" distribution of its type:
/// uniform over the full range for integers, uniform in `[0, 1)` for
/// floats, a fair coin for `bool`.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uniform_small {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_uniform_small!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_uniform_wide {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uniform_wide!(u64, i64, usize, isize);

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit construction.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok(self.try_next_u64()? as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            // SplitMix64 so the stream looks uniform enough for tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Ok(z ^ (z >> 31))
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dst.chunks_mut(8) {
                let w = self.try_next_u64()?.to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            Ok(())
        }
    }

    #[test]
    fn blanket_rng_lift() {
        let mut rng = Counter(0);
        let _: u64 = rng.next_u64();
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = Counter(2);
        let ones = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }
}
